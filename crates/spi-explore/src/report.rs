//! Batched, incrementally-merged exploration results.
//!
//! Workers do not stream one result per variant — at service scale that would
//! turn the registry lock into a contention point and the subscribers into a
//! firehose. Instead each worker accumulates a [`ShardReport`] *delta* and
//! flushes it every batch: deltas merge into the shard's staged report, staged
//! reports merge into the job's committed aggregate when the shard completes,
//! and every merge is the same associative, commutative [`ShardReport::merge`]
//! — so the final aggregate is independent of worker count, scheduling and
//! completion order.

use spi_model::json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};
use spi_variants::VariantChoice;

/// One ranked variant: the unit of the top-K result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestVariant {
    /// Global index of the variant in the space's mixed-radix order.
    pub index: usize,
    /// Evaluated cost.
    pub cost: u64,
    /// The selection behind the index.
    pub choice: VariantChoice,
    /// Evaluator-defined summary of the winning implementation.
    pub detail: String,
}

impl BestVariant {
    /// The exact ordering key of the exploration: cheapest first, earliest
    /// index breaking ties — the same key a serial sweep in index order with
    /// strict improvement (`<`) produces.
    pub fn key(&self) -> (u64, usize) {
        (self.cost, self.index)
    }
}

impl ToJson for BestVariant {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("index", self.index.to_json()),
            ("cost", self.cost.to_json()),
            ("choice", self.choice.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

impl FromJson for BestVariant {
    fn from_json(value: &JsonValue) -> JsonResult<BestVariant> {
        Ok(BestVariant {
            index: usize::from_json(value.require("index")?)?,
            cost: u64::from_json(value.require("cost")?)?,
            choice: VariantChoice::from_json(value.require("choice")?)?,
            detail: String::from_json(value.require("detail")?)?,
        })
    }
}

/// Aggregated results over a set of evaluated variants — a per-batch delta, a
/// shard's staged state and the job-wide committed aggregate are all this one
/// type at different merge depths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Variants whose evaluator actually ran (feasible or not).
    pub evaluated: u64,
    /// Of the evaluated variants, how many were feasible.
    pub feasible: u64,
    /// Variants skipped because their lower bound exceeded the incumbent.
    pub pruned: u64,
    /// Variants whose evaluation returned an error.
    pub errors: u64,
    /// Wall-clock nanoseconds spent flattening + evaluating.
    pub eval_ns: u128,
    /// The cheapest variants seen, sorted by [`BestVariant::key`] and capped
    /// at the job's top-K.
    pub top: Vec<BestVariant>,
}

impl ShardReport {
    /// Variants this report accounts for (evaluated, pruned or errored).
    /// Summed over a completed job this equals the space size exactly once.
    pub fn accounted(&self) -> u64 {
        self.evaluated + self.pruned + self.errors
    }

    /// The cheapest variant seen, if any was feasible.
    pub fn best(&self) -> Option<&BestVariant> {
        self.top.first()
    }

    /// Records one feasible evaluation, keeping `top` sorted and capped
    /// (a `top_k` of zero is treated as one — the best is always kept).
    pub fn record(&mut self, variant: BestVariant, top_k: usize) {
        let cap = top_k.max(1);
        let position = self
            .top
            .binary_search_by_key(&variant.key(), BestVariant::key)
            .unwrap_or_else(|insert_at| insert_at);
        if position >= cap {
            return;
        }
        self.top.insert(position, variant);
        self.top.truncate(cap);
    }

    /// Merges `delta` into `self`. Associative and commutative (given one
    /// consistent `top_k`), so staged/committed aggregates are independent of
    /// merge order.
    pub fn merge(&mut self, delta: &ShardReport, top_k: usize) {
        self.evaluated += delta.evaluated;
        self.feasible += delta.feasible;
        self.pruned += delta.pruned;
        self.errors += delta.errors;
        self.eval_ns += delta.eval_ns;
        if delta.top.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity((self.top.len() + delta.top.len()).min(top_k.max(1)));
        let (mut left, mut right) = (self.top.iter().peekable(), delta.top.iter().peekable());
        while merged.len() < top_k.max(1) {
            match (left.peek(), right.peek()) {
                (Some(a), Some(b)) => {
                    if a.key() <= b.key() {
                        merged.push((*a).clone());
                        left.next();
                    } else {
                        merged.push((*b).clone());
                        right.next();
                    }
                }
                (Some(a), None) => {
                    merged.push((*a).clone());
                    left.next();
                }
                (None, Some(b)) => {
                    merged.push((*b).clone());
                    right.next();
                }
                (None, None) => break,
            }
        }
        self.top = merged;
    }
}

impl ToJson for ShardReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("evaluated", self.evaluated.to_json()),
            ("feasible", self.feasible.to_json()),
            ("pruned", self.pruned.to_json()),
            ("errors", self.errors.to_json()),
            ("eval_ns", JsonValue::Int(self.eval_ns as i128)),
            ("top", self.top.to_json()),
        ])
    }
}

impl FromJson for ShardReport {
    fn from_json(value: &JsonValue) -> JsonResult<ShardReport> {
        let eval_ns = match value.require("eval_ns")? {
            JsonValue::Int(ns) if *ns >= 0 => *ns as u128,
            _ => return Err(JsonError::new("expected non-negative eval_ns")),
        };
        Ok(ShardReport {
            evaluated: u64::from_json(value.require("evaluated")?)?,
            feasible: u64::from_json(value.require("feasible")?)?,
            pruned: u64::from_json(value.require("pruned")?)?,
            errors: u64::from_json(value.require("errors")?)?,
            eval_ns,
            top: Vec::<BestVariant>::from_json(value.require("top")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variant(index: usize, cost: u64) -> BestVariant {
        BestVariant {
            index,
            cost,
            choice: VariantChoice::new().with("if", format!("v{index}")),
            detail: format!("variant {index}"),
        }
    }

    #[test]
    fn record_keeps_top_sorted_and_capped() {
        let mut report = ShardReport::default();
        for (index, cost) in [(5, 30), (1, 10), (3, 10), (2, 50), (4, 5)] {
            report.record(variant(index, cost), 3);
        }
        let keys: Vec<_> = report.top.iter().map(BestVariant::key).collect();
        assert_eq!(keys, vec![(5, 4), (10, 1), (10, 3)]);
        assert_eq!(report.best().unwrap().index, 4);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut reports = Vec::new();
        for chunk in 0..4usize {
            let mut report = ShardReport {
                evaluated: 10,
                feasible: 8,
                pruned: 1,
                errors: 1,
                eval_ns: 100,
                top: Vec::new(),
            };
            for offset in 0..5usize {
                let index = chunk * 5 + offset;
                report.record(variant(index, ((index * 7) % 13) as u64), 4);
            }
            reports.push(report);
        }
        let mut forward = ShardReport::default();
        for report in &reports {
            forward.merge(report, 4);
        }
        let mut backward = ShardReport::default();
        for report in reports.iter().rev() {
            backward.merge(report, 4);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.evaluated, 40);
        assert_eq!(forward.accounted(), 48);
        assert_eq!(forward.top.len(), 4);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let mut report = ShardReport {
            evaluated: 3,
            feasible: 2,
            pruned: 1,
            errors: 0,
            eval_ns: 1234,
            top: Vec::new(),
        };
        report.record(variant(2, 20), 8);
        report.record(variant(0, 10), 8);
        let line = report.to_json().to_line();
        let back = ShardReport::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(back, report);
        assert!(ShardReport::from_json(&JsonValue::Int(1)).is_err());
    }
}
