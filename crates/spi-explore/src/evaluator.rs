//! Pluggable per-variant evaluation.
//!
//! The exploration service walks the variant space and hands every flattened
//! combination to an [`Evaluator`]. What "cost" means is the evaluator's
//! business — the default [`PartitionEvaluator`] runs the compiled HW/SW
//! partition search of `spi-synth` and reports the optimal implementation
//! cost, but anything `Send + Sync` that maps a flattened graph to a number
//! plugs in: simulation-based scoring, timing analysis, a cheap proxy metric
//! for pre-filtering, ...
//!
//! Evaluators participate in **cross-shard pruning**: before evaluating, the
//! worker compares [`Evaluator::lower_bound`] against the job-wide incumbent
//! (the best feasible cost any worker has reported so far). A variant whose
//! bound strictly exceeds the incumbent is skipped — it cannot beat *or tie*
//! the incumbent, so skipping preserves the exact `(cost, index)` optimum,
//! tie-breaks included.

use spi_model::json::{JsonValue, ToJson};
use spi_model::SpiGraph;
use spi_store::span::{PhaseId, SpanSink};
use spi_synth::partition::optimize_compiled;
use spi_synth::{
    compiled_from_flat_graph, FeasibilityMode, SearchStrategy, SynthError, TaskParams,
};
use spi_variants::VariantChoice;

use crate::error::ExploreError;
use crate::Result;

/// Outcome of evaluating one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// The variant's cost; lower is better. Meaning is evaluator-defined.
    pub cost: u64,
    /// Whether the variant admits any feasible implementation. Infeasible
    /// variants are counted but never compete for the optimum.
    pub feasible: bool,
    /// Human-readable summary of the winning implementation (e.g. the HW/SW
    /// mapping); carried verbatim into reports.
    pub detail: String,
}

/// A pluggable variant evaluator; see the module docs.
pub trait Evaluator: Send + Sync {
    /// An admissible lower bound on [`evaluate`](Self::evaluate)'s cost for
    /// this variant: it must never exceed the true cost. Workers skip the
    /// evaluation when the bound strictly exceeds the job incumbent. The
    /// default bound of `0` disables pruning.
    fn lower_bound(&self, _choice: &VariantChoice, _graph: &SpiGraph) -> u64 {
        0
    }

    /// A canonical JSON description of this evaluator's semantics, when one
    /// exists. The spec is part of the result cache's content address:
    /// **equal specs must imply bit-identical evaluations** of every variant
    /// (normalize defaults; never include incidental state). Returning `None`
    /// (the default) keeps the evaluator out of the cache entirely — correct
    /// for closures and anything nondeterministic.
    fn spec(&self) -> Option<JsonValue> {
        None
    }

    /// Evaluates the variant at `index` of the space. `graph` is the flattened
    /// single-variant SPI graph for `choice`; `incumbent` is the best feasible
    /// cost seen job-wide at call time (`u64::MAX` until a first result), which
    /// smart evaluators may use to cut their own internal search.
    ///
    /// # Errors
    ///
    /// Evaluation errors are counted per shard and do not abort the job.
    fn evaluate(
        &self,
        index: usize,
        choice: &VariantChoice,
        graph: &SpiGraph,
        incumbent: u64,
    ) -> Result<Evaluation>;

    /// As [`evaluate`](Self::evaluate), with a [`SpanSink`] the evaluator
    /// may record its internal stages into (the default [`PartitionEvaluator`]
    /// times its compile lowering and branch-and-bound search separately).
    /// The default implementation ignores the sink and delegates, so plain
    /// evaluators need not care that the profiling plane exists.
    fn evaluate_spanned(
        &self,
        index: usize,
        choice: &VariantChoice,
        graph: &SpiGraph,
        incumbent: u64,
        spans: &SpanSink,
    ) -> Result<Evaluation> {
        let _ = spans;
        self.evaluate(index, choice, graph, incumbent)
    }
}

// --- task parameters -------------------------------------------------------------------

/// How the default evaluator assigns [`TaskParams`] to the tasks of a
/// flattened graph. Both forms are pure functions of the task *name*, so the
/// same spec yields the same parameters in every process — a requirement for
/// the ndjson frontend, where submitter and service do not share memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskParamsSpec {
    /// Every task gets the same parameters.
    Uniform(TaskParams),
    /// Parameters derived from an FNV-1a hash of the task name, seeded — a
    /// deterministic stand-in for per-task estimation data that still gives
    /// every task an individual profile.
    Hashed {
        /// Salt mixed into the name hash.
        seed: u64,
    },
}

impl Default for TaskParamsSpec {
    fn default() -> Self {
        TaskParamsSpec::Hashed { seed: 42 }
    }
}

impl TaskParamsSpec {
    /// The parameters for the task named `name`.
    pub fn params_for(&self, name: &str) -> TaskParams {
        match *self {
            TaskParamsSpec::Uniform(params) => params,
            TaskParamsSpec::Hashed { seed } => {
                let h = fnv1a(name, seed);
                TaskParams {
                    sw_time: 5 + h % 16,
                    period: 100,
                    hw_area: 15 + (h >> 8) % 30,
                    synthesis_effort: 4 + (h >> 16) % 8,
                }
            }
        }
    }
}

impl ToJson for TaskParamsSpec {
    fn to_json(&self) -> JsonValue {
        match self {
            TaskParamsSpec::Hashed { seed } => JsonValue::object([
                ("kind", JsonValue::string("hashed")),
                ("seed", seed.to_json()),
            ]),
            TaskParamsSpec::Uniform(params) => JsonValue::object([
                ("kind", JsonValue::string("uniform")),
                ("sw_time", params.sw_time.to_json()),
                ("period", params.period.to_json()),
                ("hw_area", params.hw_area.to_json()),
                ("synthesis_effort", params.synthesis_effort.to_json()),
            ]),
        }
    }
}

/// Seeded FNV-1a over the task name; stable across processes and runs.
fn fnv1a(name: &str, seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// --- the default evaluator -------------------------------------------------------------

/// The default evaluator: pose the flattened graph as a single-application
/// compiled problem ([`compiled_from_flat_graph`] — straight from the node
/// slab, no string-keyed intermediate) and run the compiled partition search;
/// the variant's cost is the optimal total implementation cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEvaluator {
    /// Cost of the embedded processor (incurred once if anything runs in SW).
    pub processor_cost: u64,
    /// Task-parameter assignment.
    pub params: TaskParamsSpec,
    /// Schedulability view for the search.
    pub mode: FeasibilityMode,
    /// Search strategy. The exact strategies (`Exhaustive`, `BranchAndBound`,
    /// and `Auto` within its exhaustive range) make service results
    /// bit-identical to a serial `optimize_serial_reference` sweep.
    pub strategy: SearchStrategy,
}

impl Default for PartitionEvaluator {
    fn default() -> Self {
        PartitionEvaluator {
            processor_cost: 15,
            params: TaskParamsSpec::default(),
            mode: FeasibilityMode::PerApplication,
            strategy: SearchStrategy::Auto,
        }
    }
}

impl PartitionEvaluator {
    /// Renders the mapping summary carried into reports; deterministic for a
    /// given optimum, so two processes evaluating the same variant agree.
    fn detail_of(cost: &spi_synth::CostBreakdown) -> String {
        format!(
            "hw=[{}] sw=[{}]",
            cost.hardware_tasks.join(","),
            cost.software_tasks.join(",")
        )
    }
}

impl Evaluator for PartitionEvaluator {
    /// The canonical spec: every field spelled out with defaults normalized,
    /// so differently-worded wire submissions of the same evaluator digest
    /// identically. All four search strategies return the same *optimal cost*
    /// (greedy excepted), but the spec still distinguishes them — `Greedy` is
    /// approximate and the others can differ in `detail` only via tie-break,
    /// which they all share; being conservative here only costs cache hits,
    /// never correctness.
    fn spec(&self) -> Option<JsonValue> {
        let strategy = match self.strategy {
            SearchStrategy::Auto => "auto",
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::BranchAndBound => "branch_and_bound",
            SearchStrategy::Greedy => "greedy",
        };
        let mode = match self.mode {
            FeasibilityMode::PerApplication => "per_application",
            FeasibilityMode::Serialized => "serialized",
        };
        Some(JsonValue::object([
            ("kind", JsonValue::string("partition")),
            ("processor_cost", self.processor_cost.to_json()),
            ("strategy", JsonValue::string(strategy)),
            ("mode", JsonValue::string(mode)),
            ("params", self.params.to_json()),
        ]))
    }

    /// Every task ends up either in software (then the processor is bought
    /// once) or in hardware (then its area is paid), so
    /// `min(processor_cost, Σ areas)` can never exceed the true optimum.
    fn lower_bound(&self, _choice: &VariantChoice, graph: &SpiGraph) -> u64 {
        let area_sum: u64 = graph
            .processes()
            .filter(|p| !p.is_virtual())
            .map(|p| self.params.params_for(p.name()).hw_area)
            .sum();
        self.processor_cost.min(area_sum)
    }

    fn evaluate(
        &self,
        index: usize,
        choice: &VariantChoice,
        graph: &SpiGraph,
        incumbent: u64,
    ) -> Result<Evaluation> {
        self.evaluate_spanned(index, choice, graph, incumbent, &SpanSink::disabled())
    }

    fn evaluate_spanned(
        &self,
        _index: usize,
        _choice: &VariantChoice,
        graph: &SpiGraph,
        _incumbent: u64,
        spans: &SpanSink,
    ) -> Result<Evaluation> {
        let spanning = spans.is_enabled();
        // The direct slab → CompiledProblem path: one pass over the flattened
        // graph's node slab, no string-keyed SynthesisProblem in between
        // (bit-identical to the two-step path, pinned in spi-synth's tests).
        if spanning {
            spans.enter(PhaseId::CompileLower);
        }
        let compiled = compiled_from_flat_graph(graph, self.processor_cost, |name| {
            Some(self.params.params_for(name))
        });
        if spanning {
            spans.exit();
        }
        let compiled = compiled?;
        if spanning {
            spans.enter(PhaseId::PartitionSearch);
        }
        let searched = optimize_compiled(&compiled, self.mode, self.strategy);
        if spanning {
            spans.exit();
        }
        match searched {
            Ok(result) => Ok(Evaluation {
                cost: result.cost.total(),
                feasible: true,
                detail: Self::detail_of(&result.cost),
            }),
            Err(SynthError::Infeasible(message)) => Ok(Evaluation {
                cost: u64::MAX,
                feasible: false,
                detail: message,
            }),
            Err(other) => Err(ExploreError::Synth(other)),
        }
    }
}

// --- closure adapter -------------------------------------------------------------------

/// A boxed lower-bound function, as attached by [`FnEvaluator::with_lower_bound`].
type BoundFn = Box<dyn Fn(&VariantChoice, &SpiGraph) -> u64 + Send + Sync>;

/// Adapts a closure into an [`Evaluator`] — the cheapest way to plug a custom
/// metric (or a test probe) into the service.
pub struct FnEvaluator<F> {
    function: F,
    bound: Option<BoundFn>,
    spec: Option<JsonValue>,
}

impl<F> FnEvaluator<F>
where
    F: Fn(usize, &VariantChoice, &SpiGraph) -> Result<Evaluation> + Send + Sync,
{
    /// Wraps `function` as an evaluator with no pruning bound.
    pub fn new(function: F) -> Self {
        FnEvaluator {
            function,
            bound: None,
            spec: None,
        }
    }

    /// Attaches a lower-bound function enabling cross-shard pruning.
    pub fn with_lower_bound(
        mut self,
        bound: impl Fn(&VariantChoice, &SpiGraph) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.bound = Some(Box::new(bound));
        self
    }

    /// Attaches a canonical spec, making the closure **cacheable** — the
    /// caller thereby asserts the closure is a pure function of
    /// `(index, choice, graph)`. Mostly a test hook; production evaluators
    /// should implement [`Evaluator::spec`] directly.
    pub fn with_spec(mut self, spec: JsonValue) -> Self {
        self.spec = Some(spec);
        self
    }
}

impl<F> Evaluator for FnEvaluator<F>
where
    F: Fn(usize, &VariantChoice, &SpiGraph) -> Result<Evaluation> + Send + Sync,
{
    fn lower_bound(&self, choice: &VariantChoice, graph: &SpiGraph) -> u64 {
        self.bound.as_ref().map_or(0, |bound| bound(choice, graph))
    }

    fn spec(&self) -> Option<JsonValue> {
        self.spec.clone()
    }

    fn evaluate(
        &self,
        index: usize,
        choice: &VariantChoice,
        graph: &SpiGraph,
        _incumbent: u64,
    ) -> Result<Evaluation> {
        (self.function)(index, choice, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_synth::from_flat_graph;
    use spi_synth::partition::optimize as optimize_partition;
    use spi_workloads::scaling_system;

    #[test]
    fn hashed_params_are_deterministic_and_name_dependent() {
        let spec = TaskParamsSpec::Hashed { seed: 42 };
        assert_eq!(spec.params_for("common0"), spec.params_for("common0"));
        assert_ne!(spec.params_for("common0"), spec.params_for("common1"));
        let other_seed = TaskParamsSpec::Hashed { seed: 7 };
        assert_ne!(spec.params_for("common0"), other_seed.params_for("common0"));
        // Ranges hold.
        let p = spec.params_for("anything");
        assert!((5..21).contains(&p.sw_time));
        assert!((15..45).contains(&p.hw_area));
        assert_eq!(p.period, 100);
    }

    #[test]
    fn partition_evaluator_matches_a_direct_search() {
        let system = scaling_system(3, 2).unwrap();
        let flattener = spi_variants::Flattener::new(&system).unwrap();
        let evaluator = PartitionEvaluator::default();
        let (choice, graph) = flattener.flatten_at(0).unwrap();
        let evaluation = evaluator.evaluate(0, &choice, &graph, u64::MAX).unwrap();
        assert!(evaluation.feasible);

        let problem = from_flat_graph(&graph, evaluator.processor_cost, |name| {
            Some(evaluator.params.params_for(name))
        })
        .unwrap();
        let direct = optimize_partition(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert_eq!(evaluation.cost, direct.cost.total());
        assert_eq!(
            evaluation.detail,
            PartitionEvaluator::detail_of(&direct.cost)
        );
    }

    #[test]
    fn partition_lower_bound_is_admissible() {
        let system = scaling_system(4, 2).unwrap();
        let flattener = spi_variants::Flattener::new(&system).unwrap();
        let evaluator = PartitionEvaluator::default();
        for index in 0..flattener.space().count() {
            let (choice, graph) = flattener.flatten_at(index).unwrap();
            let bound = evaluator.lower_bound(&choice, &graph);
            let evaluation = evaluator
                .evaluate(index, &choice, &graph, u64::MAX)
                .unwrap();
            assert!(
                bound <= evaluation.cost,
                "bound {bound} exceeds cost {} at variant {index}",
                evaluation.cost
            );
        }
    }

    #[test]
    fn partition_spec_is_canonical_and_distinguishes_semantics() {
        let default = PartitionEvaluator::default();
        let spec = default.spec().unwrap();
        // Canonical: the same evaluator always produces byte-identical specs.
        assert_eq!(
            spec.to_line(),
            PartitionEvaluator::default().spec().unwrap().to_line()
        );
        assert_eq!(spec.get("kind").unwrap().as_str(), Some("partition"));
        // Any semantic difference changes the spec.
        for other in [
            PartitionEvaluator {
                processor_cost: 99,
                ..PartitionEvaluator::default()
            },
            PartitionEvaluator {
                strategy: SearchStrategy::Greedy,
                ..PartitionEvaluator::default()
            },
            PartitionEvaluator {
                mode: FeasibilityMode::Serialized,
                ..PartitionEvaluator::default()
            },
            PartitionEvaluator {
                params: TaskParamsSpec::Hashed { seed: 7 },
                ..PartitionEvaluator::default()
            },
            PartitionEvaluator {
                params: TaskParamsSpec::Uniform(TaskParams {
                    sw_time: 10,
                    period: 100,
                    hw_area: 20,
                    synthesis_effort: 5,
                }),
                ..PartitionEvaluator::default()
            },
        ] {
            assert_ne!(other.spec().unwrap().to_line(), spec.to_line());
        }
    }

    #[test]
    fn fn_evaluator_exposes_closure_and_bound() {
        let evaluator = FnEvaluator::new(|index, _choice, _graph| {
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        })
        .with_lower_bound(|_, _| 5);
        let graph = SpiGraph::new("g");
        let choice = VariantChoice::new();
        assert_eq!(evaluator.lower_bound(&choice, &graph), 5);
        assert_eq!(
            evaluator
                .evaluate(9, &choice, &graph, u64::MAX)
                .unwrap()
                .cost,
            9
        );
    }
}
