//! Draining a leased shard: the per-worker hot loop.
//!
//! [`drain_lease`] is deliberately independent of the thread pool — it talks
//! to the registry only through the `flush` callback, so the same code runs
//! under the real [`crate::ExplorationService`] workers and under the
//! deterministic simulated workers of the property tests.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Instant;

use spi_store::metrics::{CounterId, HistogramId, MetricsRegistry};
use spi_store::span::{PhaseId, SpanSink};
use spi_variants::DeltaFlattener;

use crate::evaluator::Evaluation;
use crate::registry::Lease;
use crate::report::{BestVariant, ShardReport};

/// What the registry answered to a flushed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushResponse {
    /// Keep draining.
    Continue,
    /// The lease is stale (expired, abandoned or cancelled); stop immediately
    /// and discard local state — another lease owns the shard now.
    Stop,
}

/// How a drain ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every index of the shard was accounted and the final batch flushed.
    Completed,
    /// A flush was rejected; the shard belongs to someone else.
    Stale,
    /// The job's cancel flag (or the external stop signal) was observed.
    Stopped,
}

/// Drains every variant of `lease`'s strided shard: flatten incrementally,
/// prune against the incumbent, evaluate, batch.
///
/// The shard is walked in **Gray-code order** through a [`DeltaFlattener`]:
/// rank `r ≡ shard (mod shard_count)` maps to the canonical variant index
/// `gray_index_at(r)`, and consecutive ranks differ in one axis, so each
/// flatten patches the previous flat graph instead of rebuilding it from the
/// skeleton. Reports still carry canonical indices — the registry and the
/// evaluator never see Gray ranks.
///
/// * `batch_size` bounds how many variants are accounted per flush — smaller
///   batches mean fresher progress and tighter lease renewal, larger batches
///   mean less registry-lock traffic. A batch is also flushed early once
///   [`Lease::renew_interval`] has elapsed since the previous flush,
///   whatever its size: flushes are what renew the lease, so a slow
///   evaluator must not be able to out-wait its own deadline between them
///   (only a *single evaluation* outlasting the whole lease timeout can
///   still lose the shard — size the timeout above the per-variant worst
///   case).
/// * `stop` is polled once per variant (service shutdown rides on it).
/// * `flush(delta, is_final)` hands a report delta to the registry —
///   [`crate::JobRegistry::report_batch`] for intermediate batches,
///   [`crate::JobRegistry::complete_shard`] for the final one. Each delta's
///   `eval_ns` covers exactly the work since the previous flush, so the
///   per-shard sum is the shard's true wall time.
///
/// Accounting guarantee: when the drain returns [`DrainOutcome::Completed`],
/// every Gray rank `r ≡ shard (mod shard_count)` of the space was counted in
/// exactly one flushed delta (as evaluated, pruned or errored). Gray order
/// is a permutation of the space, so the union over all shards still covers
/// every variant index exactly once.
pub fn drain_lease(
    lease: &Lease,
    batch_size: usize,
    stop: impl Fn() -> bool,
    flush: impl FnMut(ShardReport, bool) -> FlushResponse,
) -> DrainOutcome {
    static STUB: OnceLock<MetricsRegistry> = OnceLock::new();
    let metrics = STUB.get_or_init(MetricsRegistry::disabled);
    drain_lease_instrumented(lease, batch_size, metrics, stop, flush)
}

/// Sums the drain's scratch-graph reuse into the flatten counters — called
/// once per drain, on every exit path.
fn record_flatten(metrics: &MetricsRegistry, flattener: &DeltaFlattener<'_>) {
    let stats = flattener.stats();
    metrics.add(CounterId::FlattenPatches, stats.patches);
    metrics.add(CounterId::FlattenRebuilds, stats.rebuilds);
    metrics.add(CounterId::FlattenFallbacks, stats.rebuild_fallbacks);
}

/// [`drain_lease`] with a live [`MetricsRegistry`]: the worker pool's entry
/// point. On top of the plain drain it records, per successful patch, how
/// many processes the splice touched
/// ([`HistogramId::FlattenPatchedProcesses`]) and, once per drain, the
/// patch/rebuild/fallback totals of its scratch graph.
pub fn drain_lease_instrumented(
    lease: &Lease,
    batch_size: usize,
    metrics: &MetricsRegistry,
    stop: impl Fn() -> bool,
    flush: impl FnMut(ShardReport, bool) -> FlushResponse,
) -> DrainOutcome {
    drain_lease_spanned(
        lease,
        batch_size,
        metrics,
        &SpanSink::disabled(),
        stop,
        flush,
    )
}

/// [`drain_lease_instrumented`] plus the profiling plane: the whole drain
/// becomes one [`PhaseId::DrainShard`] root span on `spans`, each variant's
/// flatten is recorded as [`PhaseId::FlattenPatch`] or
/// [`PhaseId::FlattenRebuild`] (classified by the delta flattener's own
/// stats — a rebuild is exactly the one-shot `flatten_at` path), and the
/// evaluator gets the sink via [`Evaluator::evaluate_spanned`] to time its
/// internal stages. A disabled sink reduces every site to one branch.
///
/// [`Evaluator::evaluate_spanned`]: crate::evaluator::Evaluator::evaluate_spanned
pub fn drain_lease_spanned(
    lease: &Lease,
    batch_size: usize,
    metrics: &MetricsRegistry,
    spans: &SpanSink,
    stop: impl Fn() -> bool,
    mut flush: impl FnMut(ShardReport, bool) -> FlushResponse,
) -> DrainOutcome {
    let space = lease.flattener.space();
    let combinations = space.count();
    let batch_size = batch_size.max(1);
    let spanning = spans.is_enabled();

    let mut delta = ShardReport::default();
    let mut flattener = DeltaFlattener::new(&lease.flattener);
    let mut batch_started = Instant::now();
    let mut since_flush = 0usize;
    let mut patches_seen = 0u64;
    let mut span_patches = 0u64;
    if spanning {
        spans.enter(PhaseId::DrainShard);
    }

    let mut rank = lease.shard;
    while rank < combinations {
        if lease.cancelled.load(Ordering::Relaxed) || stop() {
            record_flatten(metrics, &flattener);
            if spanning {
                spans.exit();
            }
            return DrainOutcome::Stopped;
        }

        let flatten_start = spanning.then(|| spans.stamp());
        let flatten_end;
        match flattener.flatten_gray_rank(rank) {
            // A failed flatten also reset the patcher, so the next rank
            // rebuilds from the skeleton instead of a poisoned graph.
            Err(_) => {
                flatten_end = flatten_start.map(|_| spans.stamp());
                delta.errors += 1;
            }
            Ok((index, graph)) => {
                flatten_end = flatten_start.map(|_| spans.stamp());
                let choice = space
                    .choice_at(index)
                    .expect("gray rank maps into the space by construction");
                let incumbent = lease.incumbent.load(Ordering::Relaxed);
                // Strictly-greater check: a variant whose bound *equals* the
                // incumbent could still tie it and win the (cost, index)
                // tie-break, so only strictly-worse variants are skipped.
                if lease.evaluator.lower_bound(&choice, graph) > incumbent {
                    delta.pruned += 1;
                } else {
                    match lease
                        .evaluator
                        .evaluate_spanned(index, &choice, graph, incumbent, spans)
                    {
                        Err(_) => delta.errors += 1,
                        Ok(Evaluation {
                            cost,
                            feasible,
                            detail,
                        }) => {
                            delta.evaluated += 1;
                            if feasible {
                                delta.feasible += 1;
                                lease.incumbent.fetch_min(cost, Ordering::Relaxed);
                                delta.record(
                                    BestVariant {
                                        index,
                                        cost,
                                        choice,
                                        detail,
                                    },
                                    lease.top_k,
                                );
                            }
                        }
                    }
                }
            }
        }

        // The flattened graph's borrow is over, so the flattener's stats are
        // readable again: classify the flatten span patch-vs-rebuild the same
        // way the metrics plane classifies its counters.
        if let (Some(start), Some(end)) = (flatten_start, flatten_end) {
            let stats = flattener.stats();
            let phase = if stats.patches > span_patches {
                PhaseId::FlattenPatch
            } else {
                PhaseId::FlattenRebuild
            };
            span_patches = stats.patches;
            spans.record_complete(phase, start, end);
        }

        if metrics.is_enabled() {
            let stats = flattener.stats();
            if stats.patches > patches_seen {
                metrics.record(
                    HistogramId::FlattenPatchedProcesses,
                    stats.last_patched_processes,
                );
            }
            patches_seen = stats.patches;
        }

        since_flush += 1;
        rank += lease.shard_count;

        let due = since_flush >= batch_size || batch_started.elapsed() >= lease.renew_interval;
        if due && rank < combinations {
            delta.eval_ns = batch_started.elapsed().as_nanos();
            let batch = std::mem::take(&mut delta);
            if flush(batch, false) == FlushResponse::Stop {
                record_flatten(metrics, &flattener);
                if spanning {
                    spans.exit();
                }
                return DrainOutcome::Stale;
            }
            since_flush = 0;
            batch_started = Instant::now();
        }
    }

    record_flatten(metrics, &flattener);
    delta.eval_ns = batch_started.elapsed().as_nanos();
    let outcome = match flush(delta, true) {
        FlushResponse::Continue => DrainOutcome::Completed,
        FlushResponse::Stop => DrainOutcome::Stale,
    };
    if spanning {
        spans.exit();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluation, Evaluator, FnEvaluator};
    use crate::registry::{JobRegistry, JobSpec};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn lease_for(shards: usize, evaluator: Arc<dyn Evaluator>) -> (JobRegistry, Lease) {
        let system = spi_workloads::scaling_system(3, 2).unwrap(); // 8 variants
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        registry
            .submit(
                &system,
                JobSpec {
                    name: "drain".into(),
                    shard_count: shards,
                    top_k: 8,
                    ..JobSpec::default()
                },
                evaluator,
            )
            .unwrap();
        let lease = registry.lease(Instant::now()).unwrap();
        (registry, lease)
    }

    #[test]
    fn drain_accounts_every_index_of_the_shard() {
        let evaluated = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&evaluated);
        let evaluator = Arc::new(FnEvaluator::new(move |index, _c, _g| {
            probe.fetch_add(1 << index, Ordering::Relaxed);
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let (_registry, lease) = lease_for(2, evaluator);
        assert_eq!(lease.shard, 0);
        let mut flushed = ShardReport::default();
        let outcome = drain_lease(
            &lease,
            3,
            || false,
            |delta, _| {
                flushed.merge(&delta, 8);
                FlushResponse::Continue
            },
        );
        assert_eq!(outcome, DrainOutcome::Completed);
        // Shard 0 of 2 over 8 variants walks Gray ranks 0, 2, 4, 6; in the
        // reflected Gray order 0,1,3,2,6,7,5,4 those are canonical indices
        // 0, 3, 6, 5.
        assert_eq!(evaluated.load(Ordering::Relaxed), 0b0110_1001);
        assert_eq!(flushed.evaluated, 4);
        assert_eq!(flushed.best().unwrap().index, 0);
        assert!(flushed.eval_ns > 0);
    }

    #[test]
    fn incumbent_pruning_skips_strictly_worse_variants() {
        let evaluator = Arc::new(
            FnEvaluator::new(|index, _c, _g| {
                Ok(Evaluation {
                    cost: index as u64,
                    feasible: true,
                    detail: String::new(),
                })
            })
            // Bound = true cost: everything after index 0 is strictly worse
            // than the incumbent 0 and must be pruned, not evaluated.
            .with_lower_bound(|choice, _g| {
                // Recover the index through the choice is overkill here; use a
                // constant bound above 0 instead.
                let _ = choice;
                1
            }),
        );
        let (_registry, lease) = lease_for(1, evaluator);
        let mut flushed = ShardReport::default();
        let outcome = drain_lease(
            &lease,
            64,
            || false,
            |delta, _| {
                flushed.merge(&delta, 8);
                FlushResponse::Continue
            },
        );
        assert_eq!(outcome, DrainOutcome::Completed);
        // Index 0 evaluated (bound 1 > MAX is false), sets incumbent 0; all
        // later variants have bound 1 > 0 and are pruned.
        assert_eq!(flushed.evaluated, 1);
        assert_eq!(flushed.pruned, 7);
        assert_eq!(flushed.accounted(), 8);
        assert_eq!(flushed.best().unwrap().index, 0);
    }

    #[test]
    fn evaluator_errors_are_counted_not_fatal() {
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            if index % 2 == 0 {
                Err(crate::ExploreError::Workload("boom".into()))
            } else {
                Ok(Evaluation {
                    cost: index as u64,
                    feasible: index % 4 == 1,
                    detail: String::new(),
                })
            }
        }));
        let (_registry, lease) = lease_for(1, evaluator);
        let mut flushed = ShardReport::default();
        drain_lease(
            &lease,
            2,
            || false,
            |delta, _| {
                flushed.merge(&delta, 8);
                FlushResponse::Continue
            },
        );
        assert_eq!(flushed.errors, 4);
        assert_eq!(flushed.evaluated, 4);
        assert_eq!(flushed.feasible, 2);
        assert_eq!(flushed.accounted(), 8);
    }

    #[test]
    fn slow_evaluators_flush_on_the_renew_interval_not_just_batch_size() {
        // Lease timeout 40ms → renew interval 20ms. The evaluator takes ~6ms
        // per variant and the batch size would never flush (1000 ≫ 8), so
        // every flush that happens is time-driven. Without interval flushes
        // the lease would starve and the shard livelock under a real pool.
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(6));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let system = spi_workloads::scaling_system(3, 2).unwrap(); // 8 variants
        let mut registry = JobRegistry::new(Duration::from_millis(40));
        registry
            .submit(
                &system,
                JobSpec {
                    name: "slow".into(),
                    shard_count: 1,
                    top_k: 8,
                    ..JobSpec::default()
                },
                evaluator,
            )
            .unwrap();
        let lease = registry.lease(Instant::now()).unwrap();
        assert_eq!(lease.renew_interval, Duration::from_millis(20));

        let started = Instant::now();
        let mut intermediate = 0u32;
        let mut merged = ShardReport::default();
        let outcome = drain_lease(
            &lease,
            1000,
            || false,
            |delta, is_final| {
                if !is_final {
                    intermediate += 1;
                }
                merged.merge(&delta, 8);
                FlushResponse::Continue
            },
        );
        let elapsed = started.elapsed().as_nanos();
        assert_eq!(outcome, DrainOutcome::Completed);
        assert!(
            intermediate >= 1,
            "a ~48ms drain must flush at least once before the final batch"
        );
        assert_eq!(merged.accounted(), 8);
        // eval_ns is per-delta, so the merged sum is the true wall time — a
        // cumulative-since-start timer would sum to well over `elapsed`.
        assert!(
            merged.eval_ns <= elapsed,
            "summed eval_ns {} exceeds wall time {elapsed}",
            merged.eval_ns
        );
        assert!(merged.eval_ns > 0);
    }

    #[test]
    fn stop_signal_and_stale_flush_end_the_drain() {
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let (_registry, lease) = lease_for(1, Arc::clone(&evaluator) as Arc<dyn Evaluator>);
        assert_eq!(
            drain_lease(&lease, 1, || true, |_d, _| FlushResponse::Continue),
            DrainOutcome::Stopped
        );
        let (_registry2, lease2) = lease_for(1, evaluator);
        assert_eq!(
            drain_lease(&lease2, 1, || false, |_d, _| FlushResponse::Stop),
            DrainOutcome::Stale
        );
    }
}
