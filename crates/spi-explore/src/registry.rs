//! The job registry: the lease-protocol state machine of the service.
//!
//! The registry is deliberately a **pure, synchronous state machine** — every
//! method takes `&mut self` (callers wrap it in a mutex) and time enters only
//! as explicit [`Instant`] parameters. That makes the whole lease protocol
//! deterministic under test: the property tests drive simulated workers,
//! crashes, cancellations and clock advances through the same code the real
//! worker pool runs, with no sleeping and no racing. Durability is injected
//! the same way: the registry serializes its own transition records and hands
//! them to a [`DurabilitySink`] **before** applying the transition (see
//! [`crate::durability`]), so persistence is write-ahead without the registry
//! ever touching a file.
//!
//! # The protocol
//!
//! A submitted job covers a variant space split into `shard_count` **strided
//! shards**: shard `s` owns the variant indices `s, s + count, s + 2·count, …`
//! (the stride rides on the `O(axes)` `nth` of the lazy space iterator, so a
//! shard never decodes another shard's combinations). Shards move through
//! three states:
//!
//! ```text
//!                    lease()                    complete_shard()
//!   Pending ───────────────────────▶ Leased ─────────────────────▶ Done
//!      ▲                               │  ⇅ hedge (duplicate lease)
//!      └───────────────────────────────┘
//!        expire() past the deadline / abandon()
//! ```
//!
//! Every lease carries a fresh [`LeaseId`]. Batches and completions are only
//! accepted from a lease currently holding the shard — work reported under
//! an expired, abandoned or cancelled lease gets [`ExploreError::StaleLease`]
//! and is discarded. Combined with staging (below) this yields the service's
//! core accounting guarantee: **every shard is counted exactly once** in the
//! final aggregate, no matter how many times workers crashed, stalled, raced
//! — or were deliberately duplicated by a hedge.
//!
//! # Scheduling: weighted-fair + hedged
//!
//! Pending shards are dispatched by a [`FairScheduler`] (virtual-time WFQ
//! across the `tenant` named in each [`JobSpec`]) instead of a global FIFO:
//! one tenant's `2^20`-combination monster no longer starves every later
//! submitter. When no pending shard exists, [`lease`](JobRegistry::lease) may
//! instead **hedge** a straggler: a shard in flight longer than
//! `multiplier × quantile` of the job's completed-shard durations gets a
//! *duplicate* lease. Both leases drain independently; the first to commit
//! wins the shard and the loser's lease turns stale — first-commit-wins
//! dedup, no double counting.
//!
//! # Staging vs committing
//!
//! Batch deltas merge into a per-lease **staged** report; only when the lease
//! completes its shard does the staged report merge into the job's
//! **committed** aggregate. A lease that dies mid-shard takes its staged
//! partial results with it — the re-leased shard starts from zero, so nothing
//! is double-counted. Poll snapshots expose `committed + staged` for live
//! progress (observational; staged parts may vanish on expiry), while the
//! terminal report is committed-only and exact. The commit is also the WAL
//! boundary: a shard's staged report is appended to the sink *before* it
//! merges into the committed aggregate, so replay after a crash reconstructs
//! exactly the committed census — interrupted shards restart from zero.
//!
//! # The result cache
//!
//! A submission that provides a *recipe* (the construction description of the
//! system, as the ndjson frontend does) and whose evaluator exposes a
//! canonical [`spec`](crate::Evaluator::spec) gets a content
//! [`Digest`] over `{system recipe, variant space, evaluator spec}`. On
//! completion the committed report is cached under that digest; a later
//! identical submission is served from the cache at birth — state
//! `Completed`, `evaluated == 0`, the cached optimum in `top` — without a
//! single worker evaluation.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use spi_model::digest::{digest_json, Digest};
use spi_model::introspect::{GraphEdge, GraphNode, GraphSnapshot};
use spi_model::json::{FromJson, JsonValue, ToJson};
use spi_store::metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
use spi_store::sched::{FairScheduler, HedgeConfig, LatencyTracker};
use spi_store::span::{PhaseId, SpanIds, SpanSink};
use spi_store::trace::{
    TraceCapture, TraceDrain, TraceEvent, TraceSubscription, DEFAULT_TRACE_CAPACITY,
};
use spi_store::{CacheLimit, ResultCache};
use spi_variants::{Flattener, VariantSystem};

use crate::durability::DurabilitySink;
use crate::error::ExploreError;
use crate::evaluator::Evaluator;
use crate::report::{BestVariant, ShardReport};
use crate::Result;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Raw numeric id (the wire representation).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a job id from its wire representation.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Identifier of one lease of one shard; never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(u64);

impl LeaseId {
    /// Raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a lease id from its raw representation.
    pub fn from_raw(raw: u64) -> Self {
        LeaseId(raw)
    }
}

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// Life-cycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Shards are pending or in flight.
    Running,
    /// Every shard completed; the committed aggregate is final and exact.
    Completed,
    /// Cancelled by a client (or unrecoverable after a restart); the
    /// committed aggregate holds the partial results of the shards that
    /// completed before the cancellation.
    Cancelled,
}

impl JobState {
    /// Whether the job will never change again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Running)
    }

    fn as_wire(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_wire(text: &str) -> Option<JobState> {
        match text {
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_wire())
    }
}

/// Client-tunable parameters of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable job name (for status displays; not unique).
    pub name: String,
    /// Number of strided shards the space is split into. Clamped to the
    /// combination count — an all-empty shard would be pure lease traffic.
    pub shard_count: usize,
    /// How many of the cheapest variants to retain.
    pub top_k: usize,
    /// Fair-queuing tenant this job bills its shard dispatches to.
    pub tenant: String,
    /// Fair-queuing weight of the tenant (≥ 1): a weight-`w` tenant receives
    /// `w` shard dispatches for every one a weight-1 tenant gets. The last
    /// submission's weight wins for the whole tenant.
    pub weight: u32,
    /// Whether an identical cached result may satisfy this submission. When
    /// `false` the job is recomputed (and refreshes the cache on completion).
    pub use_cache: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "exploration".to_string(),
            shard_count: 16,
            top_k: 8,
            tenant: "default".to_string(),
            weight: 1,
            use_cache: true,
        }
    }
}

/// Tunables of a [`JobRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryConfig {
    /// How long a lease survives without a batch or completion.
    pub lease_timeout: Duration,
    /// The speculative re-leasing policy.
    pub hedge: HedgeConfig,
    /// Bound on the result cache (entries and/or serialized bytes); the
    /// default is unbounded.
    pub cache_limit: CacheLimit,
    /// Compact the WAL whenever its log grows past this many bytes (checked
    /// after each committed completion); `None` compacts only at quiesce.
    pub compact_log_bytes: Option<u64>,
    /// Capacity of the scheduler-decision trace ring
    /// ([`spi_store::trace::TraceCapture`]); `0` disables capture.
    pub trace_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            lease_timeout: Duration::from_secs(30),
            hedge: HedgeConfig::default(),
            cache_limit: CacheLimit::UNBOUNDED,
            compact_log_bytes: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// A leased shard: everything a worker needs to drain it without touching the
/// registry (the `Arc`s are shared with the job, so incumbent updates and
/// cancellation are visible both ways while the registry lock is free).
#[derive(Clone)]
pub struct Lease {
    /// The job this shard belongs to.
    pub job: JobId,
    /// The lease token; batches and the completion must cite it.
    pub lease: LeaseId,
    /// Strided shard index in `0..shard_count`.
    pub shard: usize,
    /// Total shard count of the job (the stride).
    pub shard_count: usize,
    /// The job's fair-queuing tenant — span attribution uses it, so a worker
    /// never has to re-ask the registry who it is working for.
    pub tenant: String,
    /// Top-K cap for the shard's report.
    pub top_k: usize,
    /// The job's shared flattening machine.
    pub flattener: Arc<Flattener>,
    /// The job's evaluator.
    pub evaluator: Arc<dyn Evaluator>,
    /// Job-wide best feasible cost (`u64::MAX` until a first result); workers
    /// `fetch_min` it and prune against it across shards.
    pub incumbent: Arc<AtomicU64>,
    /// Set when the job is cancelled; workers abandon the drain promptly.
    pub cancelled: Arc<AtomicBool>,
    /// When the lease expires if neither batched nor completed.
    pub deadline: Instant,
    /// How often the drain should flush *at the latest* (half the registry's
    /// lease timeout): every flush renews the deadline, so respecting this
    /// interval keeps the lease alive however slow the evaluator is.
    pub renew_interval: Duration,
    /// Whether this lease is a speculative duplicate of an in-flight shard.
    pub hedged: bool,
}

/// Progress events streamed to [`JobRegistry::subscribe`]rs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// A batch improved the job-wide best variant.
    Improved {
        /// The new best.
        best: BestVariant,
    },
    /// A shard's staged report was committed.
    ShardCompleted {
        /// Which shard completed.
        shard: usize,
        /// Committed shards so far.
        shards_done: usize,
        /// Total shards of the job.
        shard_count: usize,
    },
    /// The job reached a terminal state; no further events follow.
    Finished {
        /// The terminal snapshot.
        status: JobStatus,
    },
}

/// Completed-shard latency quantiles of one job, for operators watching the
/// `jobs` op: where the shard-duration distribution sits and how long its
/// tail is. Quantiles are `None` until the first shard of the job commits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyQuantiles {
    /// Completed-shard duration samples observed so far.
    pub samples: u64,
    /// Median shard duration (nearest-rank p50), in nanoseconds.
    pub p50_ns: Option<u64>,
    /// The p95 shard duration — the quantile the default hedging policy
    /// multiplies to find stragglers.
    pub p95_ns: Option<u64>,
    /// The slowest completed shard.
    pub max_ns: Option<u64>,
}

impl LatencyQuantiles {
    /// Snapshot of a tracker's current quantiles.
    fn of(tracker: &LatencyTracker) -> LatencyQuantiles {
        LatencyQuantiles {
            samples: tracker.count(),
            p50_ns: tracker.quantile_ns(50),
            p95_ns: tracker.quantile_ns(95),
            max_ns: tracker.quantile_ns(100),
        }
    }
}

/// A point-in-time snapshot of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job.
    pub job: JobId,
    /// Its display name.
    pub name: String,
    /// Fair-queuing tenant.
    pub tenant: String,
    /// Life-cycle state.
    pub state: JobState,
    /// Size of the variant space.
    pub combinations: usize,
    /// Total shards (0 for a job served from the result cache).
    pub shard_count: usize,
    /// Committed shards.
    pub shards_done: usize,
    /// Shards currently under at least one lease.
    pub shards_in_flight: usize,
    /// Whether the job was satisfied from the content-addressed result cache
    /// (then `report.evaluated == 0` and `report.top` is the cached optimum).
    pub cache_hit: bool,
    /// Speculative duplicate leases issued for this job's stragglers.
    pub hedges_issued: u64,
    /// How many shards were won by a hedge rather than the original lease.
    pub hedge_wins: u64,
    /// Completed-shard latency quantiles (empty until a shard commits; reset
    /// after a restart — durations are wall-clock of this process's run).
    pub latency: LatencyQuantiles,
    /// Merged counters: committed plus currently-staged (staged parts are
    /// observational — they vanish if their lease expires; exact once the
    /// state is terminal).
    pub report: ShardReport,
}

impl JobStatus {
    /// The best variant found so far, if any shard reported a feasible one.
    pub fn best(&self) -> Option<&BestVariant> {
        self.report.best()
    }
}

/// One live lease on a shard (a hedged shard has several holders).
struct Holder {
    lease: LeaseId,
    deadline: Instant,
    started: Instant,
    /// Identity of the worker the lease was granted to (thread name for the
    /// in-process pool); surfaces in the waitgraph and the decision trace.
    worker: String,
}

enum ShardSlot {
    Pending,
    /// Under one or more leases (more than one while a hedge is in flight).
    Leased {
        holders: Vec<Holder>,
    },
    Done,
}

/// What a job needs to hand out leases; recovered terminal jobs (and running
/// jobs whose recipe could not be rebuilt) are archived without one.
enum JobEngine {
    Live {
        flattener: Arc<Flattener>,
        evaluator: Arc<dyn Evaluator>,
    },
    Archived,
}

struct Job {
    name: String,
    tenant: String,
    weight: u32,
    use_cache: bool,
    shard_count: usize,
    top_k: usize,
    combinations: usize,
    engine: JobEngine,
    incumbent: Arc<AtomicU64>,
    cancelled: Arc<AtomicBool>,
    state: JobState,
    shards: Vec<ShardSlot>,
    shards_done: usize,
    /// Per-lease staged reports, discarded on expiry/abandon/cancel.
    staged: HashMap<LeaseId, ShardReport>,
    /// Aggregate of completed shards only; exact by construction.
    committed: ShardReport,
    /// Best across committed *and* staged, for `Improved` events.
    best_seen: Option<BestVariant>,
    subscribers: Vec<mpsc::Sender<JobEvent>>,
    /// Content address of `(system recipe, space, evaluator spec)`, when the
    /// submission was cacheable.
    digest: Option<Digest>,
    /// The construction recipe, when supplied: what recovery rebuilds the
    /// flattener and evaluator from after a restart.
    recipe: Option<JsonValue>,
    cache_hit: bool,
    hedges_issued: u64,
    hedge_wins: u64,
    latencies: LatencyTracker,
}

impl Job {
    fn status(&self, id: JobId) -> JobStatus {
        let mut report = self.committed.clone();
        for staged in self.staged.values() {
            report.merge(staged, self.top_k);
        }
        let in_flight = self
            .shards
            .iter()
            .filter(|slot| matches!(slot, ShardSlot::Leased { .. }))
            .count();
        JobStatus {
            job: id,
            name: self.name.clone(),
            tenant: self.tenant.clone(),
            state: self.state,
            combinations: self.combinations,
            shard_count: self.shard_count,
            shards_done: self.shards_done,
            shards_in_flight: in_flight,
            cache_hit: self.cache_hit,
            hedges_issued: self.hedges_issued,
            hedge_wins: self.hedge_wins,
            latency: LatencyQuantiles::of(&self.latencies),
            report,
        }
    }

    fn emit(&mut self, event: JobEvent) {
        self.subscribers
            .retain(|subscriber| subscriber.send(event.clone()).is_ok());
    }

    fn is_live(&self) -> bool {
        matches!(self.engine, JobEngine::Live { .. })
    }

    /// The durable summary of this job, used in snapshots.
    fn durable_summary(&self, id: JobId) -> JsonValue {
        let done: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, ShardSlot::Done))
            .map(|(shard, _)| shard)
            .collect();
        JsonValue::object([
            ("job", id.raw().to_json()),
            ("name", self.name.to_json()),
            ("tenant", self.tenant.to_json()),
            ("weight", JsonValue::Int(i128::from(self.weight))),
            ("use_cache", JsonValue::Bool(self.use_cache)),
            ("shards", self.shard_count.to_json()),
            ("top_k", self.top_k.to_json()),
            ("combinations", self.combinations.to_json()),
            (
                "digest",
                self.digest
                    .as_ref()
                    .map(ToJson::to_json)
                    .unwrap_or(JsonValue::Null),
            ),
            ("recipe", self.recipe.clone().unwrap_or(JsonValue::Null)),
            ("cache_hit", JsonValue::Bool(self.cache_hit)),
            ("state", JsonValue::string(self.state.as_wire())),
            ("done", done.to_json()),
            ("committed", self.committed.to_json()),
            ("hedges_issued", self.hedges_issued.to_json()),
            ("hedge_wins", self.hedge_wins.to_json()),
        ])
    }
}

/// How to turn a stored recipe back into a live system + evaluator after a
/// restart; see [`JobRegistry::restore`]. The ndjson frontend's recipes are
/// rebuilt by [`crate::wire::rebuild_from_recipe`].
pub type RebuildFn<'a> = dyn Fn(&JsonValue) -> Result<(VariantSystem, Arc<dyn Evaluator>)> + 'a;

/// What [`JobRegistry::restore`] reconstructed, for logging/observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Jobs restored in any state.
    pub jobs: usize,
    /// Running jobs whose engines were rebuilt and shards requeued.
    pub resumed: usize,
    /// Shards requeued across resumed jobs.
    pub requeued_shards: usize,
    /// Running jobs that could not be rebuilt and were cancelled (their
    /// committed partial results are kept).
    pub unrecoverable: usize,
    /// Result-cache entries available after the restore.
    pub cache_entries: usize,
}

/// The service's job table; see the module docs for the protocol.
pub struct JobRegistry {
    config: RegistryConfig,
    next_job: u64,
    next_lease: u64,
    jobs: BTreeMap<JobId, Job>,
    /// WFQ dispatcher of `(job, shard)` candidates. May contain entries for
    /// shards that were since leased/cancelled; `lease` skips those.
    scheduler: FairScheduler,
    /// Live leases: lease → (job, shard).
    leases: HashMap<LeaseId, (JobId, usize)>,
    cache: ResultCache,
    sink: Option<Box<dyn DurabilitySink>>,
    auto_compactions: u64,
    /// Bounded ring of scheduler decisions; drained over the `trace` op.
    trace: TraceCapture,
    /// Aggregate counters/gauges/histograms next to the event-level trace;
    /// shared with the service layer (and with benches, which may hand in a
    /// [`MetricsRegistry::disabled`] stub to measure instrumentation cost).
    metrics: Arc<MetricsRegistry>,
    /// The registry's own span sink (commit/renew/WAL phases run under the
    /// registry lock, so one sink suffices); a disabled no-op by default.
    spans: SpanSink,
}

impl JobRegistry {
    /// Creates an empty registry whose leases expire after `lease_timeout`
    /// without a batch or completion, with default hedging.
    pub fn new(lease_timeout: Duration) -> Self {
        JobRegistry::with_config(RegistryConfig {
            lease_timeout,
            ..RegistryConfig::default()
        })
    }

    /// Creates an empty registry with explicit scheduling configuration.
    pub fn with_config(config: RegistryConfig) -> Self {
        let cache = ResultCache::with_limit(config.cache_limit);
        let trace = TraceCapture::new(config.trace_capacity);
        JobRegistry {
            config,
            next_job: 0,
            next_lease: 0,
            jobs: BTreeMap::new(),
            scheduler: FairScheduler::new(),
            leases: HashMap::new(),
            cache,
            sink: None,
            auto_compactions: 0,
            trace,
            metrics: Arc::new(MetricsRegistry::new()),
            spans: SpanSink::disabled(),
        }
    }

    /// Replaces the metrics registry every subsequent transition is counted
    /// into. The service layer calls this once at startup so the registry,
    /// the worker pool and the wire surface all share one instance; benches
    /// pass [`MetricsRegistry::disabled`] to measure instrumentation cost.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = metrics;
    }

    /// The metrics registry transitions are counted into.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Replaces the span sink the registry's own phases (lease renew, shard
    /// commit, WAL append) are recorded into. The service layer hands in a
    /// sink of its shared [`SpanRecorder`](spi_store::SpanRecorder) at
    /// startup; the default is the disabled no-op.
    pub fn set_spans(&mut self, spans: SpanSink) {
        self.spans = spans;
    }

    /// A lock-free live mirror of the scheduler trace's next sequence
    /// number, for [`SpanRecorder::link_trace_seq`]
    /// (spans bracket themselves with the decisions they overlapped).
    ///
    /// [`SpanRecorder::link_trace_seq`]: spi_store::SpanRecorder::link_trace_seq
    pub fn trace_seq_mirror(&self) -> Arc<AtomicU64> {
        self.trace.seq_mirror()
    }

    /// Attaches the durability sink every subsequent transition is
    /// write-ahead logged to. Call after [`restore`](Self::restore) (replay
    /// must not re-append its own records).
    pub fn set_sink(&mut self, sink: Box<dyn DurabilitySink>) {
        self.sink = Some(sink);
    }

    /// `(entries, hits, misses)` of the result cache, for observability.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        (self.cache.len(), self.cache.hits(), self.cache.misses())
    }

    /// How many times the WAL was auto-compacted because its log outgrew
    /// [`RegistryConfig::compact_log_bytes`].
    pub fn auto_compactions(&self) -> u64 {
        self.auto_compactions
    }

    /// Number of currently live leases (across all jobs and hedges).
    pub fn live_lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Number of jobs currently in the `Running` state.
    pub fn running_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|job| job.state == JobState::Running)
            .count()
    }

    /// Registers a job over `system`'s variant space; see
    /// [`submit_with_recipe`](Self::submit_with_recipe).
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] for a zero shard count, any system
    /// validation error from the flattener build, and sink failures.
    pub fn submit(
        &mut self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<JobId> {
        self.submit_with_recipe(system, spec, evaluator, None)
    }

    /// Registers a job, optionally carrying the construction `recipe` that
    /// identifies it durably (`{"system": ..., "evaluator": ...}` as the
    /// ndjson frontend submits). A recipe plus a canonical
    /// [`Evaluator::spec`] make the job **cacheable** (identical
    /// resubmissions are served from the result cache without touching the
    /// worker pool) and **recoverable** (a restart rebuilds the system and
    /// evaluator from the recipe and resumes pending shards).
    ///
    /// Builds the job's [`Flattener`] once (validating the system), clamps the
    /// shard count to the space size and queues every shard under the spec's
    /// tenant. A job over an empty space completes immediately.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_with_recipe(
        &mut self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
        recipe: Option<JsonValue>,
    ) -> Result<JobId> {
        if spec.shard_count == 0 {
            return Err(ExploreError::InvalidSpec(
                "shard_count must be at least 1".to_string(),
            ));
        }
        let flattener = Arc::new(Flattener::new(system)?);
        let combinations = flattener.space().count();
        let digest = cache_digest(
            recipe.as_ref(),
            &flattener.space().to_json(),
            evaluator.spec(),
        );
        let cached = match digest {
            Some(digest) if spec.use_cache => {
                let hit = self
                    .cache
                    .lookup(digest)
                    .map(ShardReport::from_json)
                    .transpose()
                    .map_err(|e| ExploreError::Store(format!("corrupt cache entry: {e}")))?;
                self.metrics.add(
                    if hit.is_some() {
                        CounterId::CacheHits
                    } else {
                        CounterId::CacheMisses
                    },
                    1,
                );
                hit
            }
            _ => None,
        };

        let id = JobId(self.next_job);
        let cache_hit = cached.is_some();
        let empty = combinations == 0;
        let shard_count = if cache_hit {
            0
        } else {
            spec.shard_count.min(combinations.max(1))
        };
        // A cache hit serves the cached optimum with zeroed counters: no
        // worker ran, so nothing was evaluated *for this job* — `top` carries
        // the optimum, `evaluated == 0` proves the pool was never touched.
        let committed = cached
            .map(|full| ShardReport {
                top: full.top,
                ..ShardReport::default()
            })
            .unwrap_or_default();

        let job = Job {
            name: spec.name,
            tenant: spec.tenant,
            weight: spec.weight.max(1),
            use_cache: spec.use_cache,
            shard_count,
            top_k: spec.top_k.max(1),
            combinations,
            engine: JobEngine::Live {
                flattener,
                evaluator,
            },
            incumbent: Arc::new(AtomicU64::new(u64::MAX)),
            cancelled: Arc::new(AtomicBool::new(false)),
            state: if empty || cache_hit {
                JobState::Completed
            } else {
                JobState::Running
            },
            shards: if empty || cache_hit {
                Vec::new()
            } else {
                (0..shard_count).map(|_| ShardSlot::Pending).collect()
            },
            shards_done: 0,
            staged: HashMap::new(),
            committed,
            best_seen: None,
            subscribers: Vec::new(),
            digest,
            recipe,
            cache_hit,
            hedges_issued: 0,
            hedge_wins: 0,
            latencies: LatencyTracker::new(),
        };

        // Write-ahead: the submit record must be durable before the job
        // exists (a crash in between recovers to "never submitted", which the
        // client, having no ack, must assume anyway).
        if self.sink.is_some() {
            let record = submit_record(id, &job);
            self.append_record(&record)?;
        }

        self.next_job += 1;
        if cache_hit {
            self.trace.record(TraceEvent::CacheHit { job: id.raw() });
        }
        if job.state == JobState::Running {
            for shard in 0..shard_count {
                self.scheduler
                    .enqueue(&job.tenant, job.weight, (id.raw(), shard));
                self.trace.record(TraceEvent::WfqEnqueue {
                    tenant: job.tenant.clone(),
                    weight: job.weight,
                    job: id.raw(),
                    shard,
                });
            }
            self.metrics.add(CounterId::WfqEnqueues, shard_count as u64);
            if self.metrics.is_enabled() {
                let tenant = self.metrics.tenant(&job.tenant);
                for _ in 0..shard_count {
                    tenant.add_enqueue();
                }
                tenant.observe_queue(
                    self.scheduler.tenant_backlog(&job.tenant) as u64,
                    self.scheduler.tenant_vtime_lag(&job.tenant),
                );
            }
        }
        self.jobs.insert(id, job);
        Ok(id)
    }

    /// Hands out the next shard under the WFQ policy, if any; stale scheduler
    /// entries (shards already leased, completed or belonging to terminal
    /// jobs) are skipped and dropped. When no pending shard exists, a
    /// straggler shard past the hedge threshold may be **re-leased
    /// speculatively** — the returned lease then has
    /// [`Lease::hedged`] set and races the original holder under
    /// first-commit-wins.
    pub fn lease(&mut self, now: Instant) -> Option<Lease> {
        self.lease_as("anonymous", now)
    }

    /// [`lease`](Self::lease) with an explicit worker identity: the name the
    /// lease's grant is attributed to in the waitgraph and the decision
    /// trace (the worker pool passes its thread name).
    pub fn lease_as(&mut self, worker: &str, now: Instant) -> Option<Lease> {
        while let Some(dispatch) = self.scheduler.dequeue_dispatch() {
            let (job_raw, shard) = dispatch.entry;
            // Every dispatch is recorded — including ones skipped as stale
            // below — because each one advances virtual time and debits the
            // tenant's traced backlog; replay would underflow otherwise.
            self.trace.record(TraceEvent::WfqDequeue {
                tenant: dispatch.tenant,
                weight: dispatch.weight,
                job: job_raw,
                shard,
                vtime: dispatch.vtime,
            });
            self.metrics.add(CounterId::WfqDequeues, 1);
            let job_id = JobId(job_raw);
            let Some(job) = self.jobs.get(&job_id) else {
                continue;
            };
            if job.state != JobState::Running
                || !matches!(job.shards[shard], ShardSlot::Pending)
                || !job.is_live()
            {
                continue;
            }
            if self.metrics.is_enabled() {
                let tenant = self.metrics.tenant(&job.tenant);
                tenant.add_service();
                tenant.observe_queue(
                    self.scheduler.tenant_backlog(&job.tenant) as u64,
                    self.scheduler.tenant_vtime_lag(&job.tenant),
                );
            }
            return Some(self.grant(job_id, shard, now, false, worker));
        }
        let (job_id, shard) = self.hedge_candidate(now)?;
        Some(self.grant(job_id, shard, now, true, worker))
    }

    /// The most overdue straggler shard eligible for a duplicate lease.
    fn hedge_candidate(&self, now: Instant) -> Option<(JobId, usize)> {
        let hedge = &self.config.hedge;
        let mut best: Option<(u128, JobId, usize)> = None;
        for (&job_id, job) in &self.jobs {
            if job.state != JobState::Running || !job.is_live() {
                continue;
            }
            let Some(threshold_ns) = job.latencies.hedge_threshold_ns(hedge) else {
                continue;
            };
            for (shard, slot) in job.shards.iter().enumerate() {
                let ShardSlot::Leased { holders } = slot else {
                    continue;
                };
                if holders.len() > hedge.max_hedges {
                    continue;
                }
                let earliest = holders
                    .iter()
                    .map(|holder| holder.started)
                    .min()
                    .expect("a leased slot has at least one holder");
                let elapsed = now.saturating_duration_since(earliest).as_nanos();
                if elapsed > u128::from(threshold_ns)
                    && best.as_ref().is_none_or(|(most, _, _)| elapsed > *most)
                {
                    best = Some((elapsed, job_id, shard));
                }
            }
        }
        best.map(|(_, job_id, shard)| (job_id, shard))
    }

    fn grant(
        &mut self,
        job_id: JobId,
        shard: usize,
        now: Instant,
        hedged: bool,
        worker: &str,
    ) -> Lease {
        let lease = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.trace.record(TraceEvent::LeaseGrant {
            job: job_id.raw(),
            shard,
            lease: lease.raw(),
            worker: worker.to_string(),
            hedged,
        });
        self.metrics.add(CounterId::LeaseGrants, 1);
        if hedged {
            self.metrics.add(CounterId::HedgesIssued, 1);
        }
        let deadline = now + self.config.lease_timeout;
        let job = self.jobs.get_mut(&job_id).expect("candidate job exists");
        let holder = Holder {
            lease,
            deadline,
            started: now,
            worker: worker.to_string(),
        };
        match &mut job.shards[shard] {
            slot @ ShardSlot::Pending => {
                *slot = ShardSlot::Leased {
                    holders: vec![holder],
                };
            }
            ShardSlot::Leased { holders } => holders.push(holder),
            ShardSlot::Done => unreachable!("done shards are never granted"),
        }
        if hedged {
            job.hedges_issued += 1;
        }
        self.leases.insert(lease, (job_id, shard));
        let JobEngine::Live {
            flattener,
            evaluator,
        } = &job.engine
        else {
            unreachable!("granted jobs are live")
        };
        Lease {
            job: job_id,
            lease,
            shard,
            shard_count: job.shard_count,
            tenant: job.tenant.clone(),
            top_k: job.top_k,
            flattener: Arc::clone(flattener),
            evaluator: Arc::clone(evaluator),
            incumbent: Arc::clone(&job.incumbent),
            cancelled: Arc::clone(&job.cancelled),
            deadline,
            renew_interval: self.config.lease_timeout / 2,
            hedged,
        }
    }

    fn resolve_lease(&self, lease: LeaseId) -> Result<(JobId, usize)> {
        self.leases
            .get(&lease)
            .copied()
            .ok_or(ExploreError::StaleLease(lease))
    }

    /// The attribution ids of `lease` right now, for span context: the same
    /// job/shard/lease/tenant/worker ids the waitgraph nodes carry.
    fn span_context(&self, job_id: JobId, shard: usize, lease: LeaseId) -> SpanIds {
        let job = self.jobs.get(&job_id);
        let worker = job.and_then(|job| match &job.shards[shard] {
            ShardSlot::Leased { holders } => holders
                .iter()
                .find(|holder| holder.lease == lease)
                .map(|holder| Arc::<str>::from(holder.worker.as_str())),
            _ => None,
        });
        SpanIds {
            job: Some(job_id.raw()),
            shard: Some(shard as u64),
            lease: Some(lease.raw()),
            tenant: job.map(|job| Arc::<str>::from(job.tenant.as_str())),
            worker,
        }
    }

    fn append_record(&mut self, record: &JsonValue) -> Result<()> {
        if let Some(sink) = self.sink.as_mut() {
            let spanning = self.spans.is_enabled();
            if spanning {
                // A standalone append (submit, cancel) is not attributable
                // to any lease; only nested appends inherit commit context.
                if self.spans.depth() == 0 {
                    self.spans.clear_context();
                }
                self.spans.enter(PhaseId::WalAppend);
            }
            let appended = sink.append(record).map_err(ExploreError::Store);
            if spanning {
                self.spans.exit();
            }
            appended?;
            if self.metrics.is_enabled() {
                self.metrics.add(CounterId::WalAppends, 1);
                self.metrics
                    .add(CounterId::WalAppendBytes, record.to_line().len() as u64);
                self.metrics
                    .set_gauge(GaugeId::WalLogBytes, sink.log_bytes());
            }
        }
        Ok(())
    }

    /// Merges a batch delta into the lease's staged report and **renews the
    /// lease deadline** — a batch is proof of liveness, so a slow shard stays
    /// owned as long as it keeps reporting.
    ///
    /// # Errors
    ///
    /// [`ExploreError::StaleLease`] if the lease expired, was abandoned, lost
    /// its shard to a hedge, or its job was cancelled; the caller must stop
    /// working on the shard.
    pub fn report_batch(&mut self, lease: LeaseId, delta: ShardReport, now: Instant) -> Result<()> {
        let (job_id, shard) = self.resolve_lease(lease)?;
        let spanning = self.spans.is_enabled();
        if spanning {
            let ids = self.span_context(job_id, shard, lease);
            self.spans.set_context(ids);
            self.spans.enter(PhaseId::LeaseRenew);
        }
        let deadline = now + self.config.lease_timeout;
        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        if let ShardSlot::Leased { holders } = &mut job.shards[shard] {
            if let Some(holder) = holders.iter_mut().find(|holder| holder.lease == lease) {
                holder.deadline = deadline;
                self.trace.record(TraceEvent::LeaseRenew {
                    job: job_id.raw(),
                    shard,
                    lease: lease.raw(),
                });
                self.metrics.add(CounterId::LeaseRenews, 1);
            }
        }
        if delta.eval_ns > 0 {
            self.metrics.record(
                HistogramId::BatchEvalNs,
                u64::try_from(delta.eval_ns).unwrap_or(u64::MAX),
            );
        }
        let top_k = job.top_k;
        let staged = job.staged.entry(lease).or_default();
        staged.merge(&delta, top_k);
        if let Some(best) = delta.best() {
            let improved = job
                .best_seen
                .as_ref()
                .is_none_or(|seen| best.key() < seen.key());
            if improved {
                job.best_seen = Some(best.clone());
                let best = best.clone();
                job.emit(JobEvent::Improved { best });
            }
        }
        if spanning {
            self.spans.exit();
        }
        Ok(())
    }

    /// Completes the shard under `lease`: merges the final `delta`,
    /// write-ahead logs the staged report, commits it into the job aggregate
    /// and, when it was the last shard, finishes the job (inserting the
    /// committed result into the cache when the job is cacheable). Any other
    /// leases on the same shard — hedges or hedged-over originals — turn
    /// stale: **first commit wins**.
    ///
    /// Returns `true` when the job reached its terminal state with this call.
    ///
    /// # Errors
    ///
    /// [`ExploreError::StaleLease`] as for [`report_batch`](Self::report_batch);
    /// [`ExploreError::Store`] when the sink rejects the commit record. On a
    /// store error **nothing has been mutated** — neither staged nor committed
    /// state — so the lease stays live and retrying with the *same* `delta`
    /// is safe (it will not double-count), as is abandoning the lease.
    pub fn complete_shard(
        &mut self,
        lease: LeaseId,
        delta: ShardReport,
        now: Instant,
    ) -> Result<bool> {
        let (job_id, shard) = self.resolve_lease(lease)?;
        let spanning = self.spans.is_enabled();
        if spanning {
            let ids = self.span_context(job_id, shard, lease);
            self.spans.set_context(ids);
            self.spans.enter(PhaseId::ShardCommit);
        }

        // Write-ahead: the commit record goes to the sink before any in-memory
        // state changes, so a crash on either side of the append replays to a
        // consistent census (shard uncommitted → re-run; committed → merged).
        // The record is built from a *copy* of staged ∪ delta — a sink failure
        // leaves staged untouched, which is what makes a same-delta retry safe.
        if self.sink.is_some() {
            let job = self.jobs.get(&job_id).expect("lease resolves to job");
            let mut full = job.staged.get(&lease).cloned().unwrap_or_default();
            full.merge(&delta, job.top_k);
            let record = JsonValue::object([
                ("t", JsonValue::string("shard")),
                ("job", job_id.raw().to_json()),
                ("shard", shard.to_json()),
                ("report", full.to_json()),
            ]);
            if let Err(rejected) = self.append_record(&record) {
                if spanning {
                    self.spans.exit();
                }
                return Err(rejected);
            }
        }
        self.report_batch(lease, delta, now)
            .expect("lease resolved above and nothing in between can invalidate it");

        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        let staged = job.staged.remove(&lease).unwrap_or_default();
        let evaluated = staged.evaluated;
        let top_k = job.top_k;
        job.committed.merge(&staged, top_k);

        // First-commit-wins: every holder of this shard is retired; the
        // losers' future flushes get StaleLease and their staged partials die.
        let mut winner_started = None;
        let mut earliest_started = None;
        if let ShardSlot::Leased { holders } = &job.shards[shard] {
            earliest_started = holders.iter().map(|holder| holder.started).min();
            for holder in holders {
                if holder.lease == lease {
                    winner_started = Some(holder.started);
                } else {
                    self.leases.remove(&holder.lease);
                    job.staged.remove(&holder.lease);
                }
            }
        }
        self.leases.remove(&lease);
        job.shards[shard] = ShardSlot::Done;
        job.shards_done += 1;
        self.trace.record(TraceEvent::ShardCommit {
            job: job_id.raw(),
            shard,
            lease: lease.raw(),
            evaluated,
        });
        self.metrics.add(CounterId::ShardCommits, 1);
        self.metrics.add(CounterId::EvalVariants, evaluated);
        if let Some(started) = winner_started {
            let duration = now.saturating_duration_since(started);
            let duration_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
            job.latencies.record_ns(duration_ns);
            self.metrics.record(HistogramId::ShardEvalNs, duration_ns);
            if earliest_started.is_some_and(|earliest| started > earliest) {
                job.hedge_wins += 1;
                self.trace.record(TraceEvent::HedgeWin {
                    job: job_id.raw(),
                    shard,
                    lease: lease.raw(),
                });
                self.metrics.add(CounterId::HedgeWins, 1);
            }
        }

        let done = job.shards_done;
        let total = job.shard_count;
        job.emit(JobEvent::ShardCompleted {
            shard,
            shards_done: done,
            shard_count: total,
        });
        if done == total {
            job.state = JobState::Completed;
            let cache_entry = job.digest.map(|digest| (digest, job.committed.to_json()));
            let status = job.status(job_id);
            job.emit(JobEvent::Finished { status });
            if let Some((digest, result)) = cache_entry {
                let evicted = self.cache.insert(digest, result);
                if evicted > 0 {
                    self.trace.record(TraceEvent::CacheEvict { evicted });
                    self.metrics.add(CounterId::CacheEvictions, evicted);
                }
                self.metrics
                    .set_gauge(GaugeId::CacheEntries, self.cache.len() as u64);
                self.metrics
                    .set_gauge(GaugeId::CacheBytes, self.cache.total_bytes() as u64);
            }
            self.maybe_compact_for_size();
            if spanning {
                self.spans.exit();
            }
            return Ok(true);
        }
        self.maybe_compact_for_size();
        if spanning {
            self.spans.exit();
        }
        Ok(false)
    }

    /// Compacts the sink when its log has outgrown the configured budget.
    /// Runs *after* a commit is applied, so it is best-effort: a failed
    /// compaction leaves a valid (just longer) log, and the next commit
    /// retries.
    fn maybe_compact_for_size(&mut self) {
        let Some(budget) = self.config.compact_log_bytes else {
            return;
        };
        let oversized = self
            .sink
            .as_ref()
            .is_some_and(|sink| sink.log_bytes() > budget);
        if oversized && self.compact_store().is_ok() {
            self.auto_compactions += 1;
        }
    }

    /// Voluntarily returns a lease (worker shutting down): staged work is
    /// discarded and, if no other lease holds the shard, the shard re-queued.
    /// A stale lease is a no-op.
    pub fn abandon(&mut self, lease: LeaseId) {
        self.release(lease, false);
    }

    /// Shared teardown of [`abandon`](Self::abandon) and
    /// [`expire`](Self::expire); `expired` only decides which trace event the
    /// release is recorded as.
    fn release(&mut self, lease: LeaseId, expired: bool) {
        let Some((job_id, shard)) = self.leases.remove(&lease) else {
            return;
        };
        self.trace.record(if expired {
            TraceEvent::LeaseExpire {
                job: job_id.raw(),
                shard,
                lease: lease.raw(),
            }
        } else {
            TraceEvent::LeaseAbandon {
                job: job_id.raw(),
                shard,
                lease: lease.raw(),
            }
        });
        self.metrics.add(
            if expired {
                CounterId::LeaseExpiries
            } else {
                CounterId::LeaseAbandons
            },
            1,
        );
        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        job.staged.remove(&lease);
        if let ShardSlot::Leased { holders } = &mut job.shards[shard] {
            holders.retain(|holder| holder.lease != lease);
            if holders.is_empty() && job.state == JobState::Running {
                job.shards[shard] = ShardSlot::Pending;
                self.scheduler
                    .enqueue(&job.tenant, job.weight, (job_id.raw(), shard));
                self.trace.record(TraceEvent::WfqEnqueue {
                    tenant: job.tenant.clone(),
                    weight: job.weight,
                    job: job_id.raw(),
                    shard,
                });
                self.metrics.add(CounterId::WfqEnqueues, 1);
                if self.metrics.is_enabled() {
                    let tenant = self.metrics.tenant(&job.tenant);
                    tenant.add_enqueue();
                    tenant.observe_queue(
                        self.scheduler.tenant_backlog(&job.tenant) as u64,
                        self.scheduler.tenant_vtime_lag(&job.tenant),
                    );
                }
            }
        }
    }

    /// Reclaims every lease whose deadline passed: staged partials are
    /// dropped and orphaned shards re-queued (a hedged shard with one live
    /// holder left keeps running). Returns how many leases were reclaimed.
    pub fn expire(&mut self, now: Instant) -> usize {
        let expired: Vec<LeaseId> = self
            .jobs
            .values()
            .flat_map(|job| job.shards.iter())
            .filter_map(|slot| match slot {
                ShardSlot::Leased { holders } => Some(holders.iter()),
                _ => None,
            })
            .flatten()
            .filter(|holder| holder.deadline <= now)
            .map(|holder| holder.lease)
            .collect();
        for lease in &expired {
            self.release(*lease, true);
        }
        expired.len()
    }

    /// Cancels a running job: pending shards are dropped, live leases
    /// invalidated (their future batches get [`ExploreError::StaleLease`]) and
    /// the shared cancel flag raised so draining workers stop early. Terminal
    /// jobs are left as they are — cancellation is idempotent. Returns the
    /// resulting snapshot.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id; [`ExploreError::Store`]
    /// when the sink rejects the cancel record (the job then stays running).
    pub fn cancel(&mut self, job_id: JobId) -> Result<JobStatus> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        if job.state != JobState::Running {
            return self.poll(job_id);
        }
        if self.sink.is_some() {
            let record = JsonValue::object([
                ("t", JsonValue::string("cancel")),
                ("job", job_id.raw().to_json()),
            ]);
            self.append_record(&record)?;
        }
        let job = self.jobs.get_mut(&job_id).expect("job still present");
        job.state = JobState::Cancelled;
        job.cancelled.store(true, Ordering::Relaxed);
        job.staged.clear();
        let stale: Vec<(LeaseId, usize)> = self
            .leases
            .iter()
            .filter(|(_, (owner, _))| *owner == job_id)
            .map(|(lease, (_, shard))| (*lease, *shard))
            .collect();
        for (lease, shard) in stale {
            self.leases.remove(&lease);
            self.trace.record(TraceEvent::LeaseAbandon {
                job: job_id.raw(),
                shard,
                lease: lease.raw(),
            });
            self.metrics.add(CounterId::LeaseAbandons, 1);
        }
        let job = self.jobs.get_mut(&job_id).expect("job still present");
        for slot in &mut job.shards {
            if matches!(slot, ShardSlot::Leased { .. }) {
                *slot = ShardSlot::Pending;
            }
        }
        let status = job.status(job_id);
        job.emit(JobEvent::Finished {
            status: status.clone(),
        });
        Ok(status)
    }

    /// A point-in-time snapshot of the job.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id.
    pub fn poll(&self, job_id: JobId) -> Result<JobStatus> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        Ok(job.status(job_id))
    }

    /// Subscribes to the job's event stream. Events already in the past are
    /// not replayed; a terminal job yields an immediate `Finished` event.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id.
    pub fn subscribe(&mut self, job_id: JobId) -> Result<mpsc::Receiver<JobEvent>> {
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        let (sender, receiver) = mpsc::channel();
        if job.state.is_terminal() {
            let status = job.status(job_id);
            let _ = sender.send(JobEvent::Finished { status });
        } else {
            job.subscribers.push(sender);
        }
        Ok(receiver)
    }

    /// Ids of every registered job, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().copied().collect()
    }

    /// Takes every buffered scheduler-decision trace event (plus the count of
    /// events the ring had to drop since the previous drain). Concatenated
    /// drains of a never-full ring form one gap-free, replayable trace.
    pub fn drain_trace(&mut self) -> TraceDrain {
        self.trace.drain()
    }

    /// Reads trace events at or after the `since` cursor **without**
    /// consuming them — the cursor-style counterpart of
    /// [`drain_trace`](Self::drain_trace); see [`TraceCapture::read_since`].
    pub fn read_trace_since(&self, since: u64) -> TraceDrain {
        self.trace.read_since(since)
    }

    /// The sequence number the next recorded trace event will get — the
    /// natural starting cursor for [`read_trace_since`](Self::read_trace_since).
    pub fn trace_next_seq(&self) -> u64 {
        self.trace.next_seq()
    }

    /// Registers a bounded live subscription fed every subsequent trace
    /// event; see [`TraceCapture::subscribe`].
    pub fn subscribe_trace(&mut self, queue: usize) -> TraceSubscription {
        self.trace.subscribe(queue)
    }

    /// A point-in-time health observation for the stall watchdog: every live
    /// lease holder with its age and the owning job's completed-shard p95,
    /// every backlogged tenant with its cumulative WFQ service count, and the
    /// WAL's size against its compaction budget. Pure data — the watchdog
    /// ([`crate::health::Watchdog`]) compares consecutive observations
    /// outside the registry lock.
    pub fn observe_health(&self, now: Instant) -> crate::health::HealthObservation {
        let mut leases = Vec::new();
        for (&job_id, job) in &self.jobs {
            let p95_ns = job.latencies.quantile_ns(95);
            for (shard, slot) in job.shards.iter().enumerate() {
                let ShardSlot::Leased { holders } = slot else {
                    continue;
                };
                for holder in holders {
                    leases.push(crate::health::LeaseHealth {
                        lease: holder.lease.raw(),
                        job: job_id.raw(),
                        shard,
                        worker: holder.worker.clone(),
                        elapsed: now.saturating_duration_since(holder.started),
                        overdue: holder.deadline <= now,
                        p95_ns,
                    });
                }
            }
        }
        let tenants = self
            .scheduler
            .busy_tenants()
            .map(|tenant| crate::health::TenantHealth {
                tenant: tenant.to_string(),
                backlog: self.scheduler.tenant_backlog(tenant) as u64,
                service: self.metrics.tenant_service(tenant),
            })
            .collect();
        crate::health::HealthObservation {
            leases,
            tenants,
            log_bytes: self.sink.as_ref().map_or(0, |sink| sink.log_bytes()),
            compact_budget: self.config.compact_log_bytes,
            compactions: self.metrics.counter(CounterId::WalCompactions),
        }
    }

    /// Assembles the current **waitgraph**: one [`GraphSnapshot`] over the
    /// canonical node kinds (`job`, `shard`, `lease`, `worker`, `tenant`,
    /// `store`) whose single `needs` edge kind states exactly what each
    /// entity is waiting on right now. Built under the caller's registry
    /// lock, so it is never torn; the result always passes
    /// [`GraphSnapshot::validate`].
    ///
    /// Edges:
    /// * running `job → tenant` — dispatches bill to the tenant's WFQ queue;
    /// * running `job → store` — commits must clear the WAL first (durable
    ///   registries only);
    /// * running `job → shard` for every non-done shard;
    /// * pending `shard → tenant` — waiting for a WFQ dispatch;
    /// * leased `shard → lease` for every holder (several while hedged);
    /// * `lease → worker` — the drain the lease is waiting on.
    pub fn waitgraph(&self) -> GraphSnapshot {
        let mut snapshot = GraphSnapshot::new();
        let durable = self.sink.is_some();
        if durable {
            snapshot.nodes.push(
                GraphNode::new("store:wal", "store", "write-ahead log").attr(
                    "log_bytes",
                    self.sink
                        .as_ref()
                        .map_or(0, |sink| sink.log_bytes())
                        .to_string(),
                ),
            );
        }
        // One tenant node per distinct tenant; the last submission's weight
        // wins, matching the scheduler's own rule.
        let mut tenants: BTreeMap<&str, u32> = BTreeMap::new();
        let mut workers: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for job in self.jobs.values() {
            tenants.insert(&job.tenant, job.weight);
            for slot in &job.shards {
                if let ShardSlot::Leased { holders } = slot {
                    for holder in holders {
                        workers.insert(&holder.worker);
                    }
                }
            }
        }
        for (tenant, weight) in &tenants {
            snapshot.nodes.push(
                GraphNode::new(format!("tenant:{tenant}"), "tenant", *tenant)
                    .attr("weight", weight.to_string()),
            );
        }
        for worker in &workers {
            snapshot.nodes.push(GraphNode::new(
                format!("worker:{worker}"),
                "worker",
                *worker,
            ));
        }
        for (&id, job) in &self.jobs {
            let job_node = format!("job:{}", id.raw());
            snapshot.nodes.push(
                GraphNode::new(&job_node, "job", &job.name)
                    .attr("state", job.state.to_string())
                    .attr("shards_done", job.shards_done.to_string())
                    .attr("shards", job.shard_count.to_string()),
            );
            if job.state != JobState::Running {
                continue;
            }
            let tenant_node = format!("tenant:{}", job.tenant);
            snapshot.edges.push(GraphEdge::new(&job_node, &tenant_node));
            if durable {
                snapshot.edges.push(GraphEdge::new(&job_node, "store:wal"));
            }
            for (shard, slot) in job.shards.iter().enumerate() {
                let (state, holders): (&str, &[Holder]) = match slot {
                    ShardSlot::Pending => ("pending", &[]),
                    ShardSlot::Leased { holders } => ("leased", holders),
                    ShardSlot::Done => continue,
                };
                let shard_node = format!("shard:{}/{shard}", id.raw());
                snapshot.nodes.push(
                    GraphNode::new(&shard_node, "shard", format!("{}[{shard}]", job.name))
                        .attr("state", state),
                );
                snapshot.edges.push(GraphEdge::new(&job_node, &shard_node));
                if holders.is_empty() {
                    snapshot
                        .edges
                        .push(GraphEdge::new(&shard_node, &tenant_node));
                }
                for holder in holders {
                    let lease_node = format!("lease:{}", holder.lease.raw());
                    snapshot.nodes.push(
                        GraphNode::new(&lease_node, "lease", holder.lease.raw().to_string())
                            .attr("worker", &holder.worker),
                    );
                    snapshot
                        .edges
                        .push(GraphEdge::new(&shard_node, &lease_node));
                    snapshot.edges.push(GraphEdge::new(
                        &lease_node,
                        format!("worker:{}", holder.worker),
                    ));
                }
            }
        }
        snapshot
    }

    /// The full durable state as one snapshot value (jobs, cache, id
    /// counter): what [`restore`](Self::restore) consumes and the compaction
    /// path hands to [`DurabilitySink::compact`].
    pub fn durable_snapshot(&self) -> JsonValue {
        JsonValue::object([
            ("next_job", self.next_job.to_json()),
            ("cache", self.cache.to_snapshot()),
            (
                "jobs",
                JsonValue::Array(
                    self.jobs
                        .iter()
                        .map(|(&id, job)| job.durable_summary(id))
                        .collect(),
                ),
            ),
        ])
    }

    /// Compacts the sink to the current durable snapshot (and syncs it to
    /// stable storage). A no-op without a sink.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Store`] when the sink fails.
    pub fn compact_store(&mut self) -> Result<()> {
        let snapshot = self.durable_snapshot();
        if let Some(sink) = self.sink.as_mut() {
            let log_bytes = sink.compact(&snapshot).map_err(ExploreError::Store)?;
            self.trace.record(TraceEvent::WalCompact { log_bytes });
            self.metrics.add(CounterId::WalCompactions, 1);
            self.metrics.set_gauge(GaugeId::WalLogBytes, log_bytes);
        }
        Ok(())
    }

    /// Rebuilds registry state from a recovered snapshot plus the record tail
    /// appended after it — the restart path. Must be called on a fresh
    /// registry, **before** [`set_sink`](Self::set_sink) (replay must not
    /// re-append its own records).
    ///
    /// Running jobs with a recipe are rebuilt through `rebuild` and their
    /// non-committed shards requeued (in-flight leases did not survive the
    /// crash; their staged work restarts from zero — exactly-once holds
    /// because only committed shard reports were logged). Running jobs
    /// without a recipe (in-process submissions) cannot be re-evaluated and
    /// are restored as `Cancelled`, keeping their committed partial results.
    /// The result cache is restored from the snapshot and re-fed from every
    /// replayed completed job.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Store`] when a record or snapshot is malformed
    /// (checksums already passed in the WAL layer, so this means a version
    /// mismatch, not corruption).
    pub fn restore(
        &mut self,
        snapshot: Option<&JsonValue>,
        records: &[JsonValue],
        rebuild: &RebuildFn<'_>,
    ) -> Result<RestoreStats> {
        let corrupt = |message: String| ExploreError::Store(message);
        let mut recovered: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
        let mut next_job = 0u64;

        if let Some(snapshot) = snapshot {
            next_job = snapshot
                .get("next_job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| corrupt("snapshot missing next_job".into()))?;
            self.cache = ResultCache::from_snapshot(
                snapshot
                    .get("cache")
                    .ok_or_else(|| corrupt("snapshot missing cache".into()))?,
            )
            .map_err(|e| corrupt(format!("snapshot cache: {e}")))?;
            self.cache.set_limit(self.config.cache_limit);
            let jobs = snapshot
                .get("jobs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| corrupt("snapshot missing jobs".into()))?;
            for summary in jobs {
                let job = RecoveredJob::from_summary(summary).map_err(corrupt)?;
                recovered.insert(job.id, job);
            }
        }

        for record in records {
            let kind = record
                .get("t")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| corrupt("record missing t".into()))?;
            let job_id = record
                .get("job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| corrupt(format!("{kind} record missing job")))?;
            match kind {
                "submit" => {
                    let job = RecoveredJob::from_summary(record).map_err(corrupt)?;
                    next_job = next_job.max(job_id + 1);
                    recovered.insert(job_id, job);
                }
                "shard" => {
                    let job = recovered
                        .get_mut(&job_id)
                        .ok_or_else(|| corrupt(format!("shard record for unknown job {job_id}")))?;
                    let shard = record
                        .get("shard")
                        .and_then(JsonValue::as_usize)
                        .ok_or_else(|| corrupt("shard record missing shard".into()))?;
                    let report = ShardReport::from_json(
                        record
                            .get("report")
                            .ok_or_else(|| corrupt("shard record missing report".into()))?,
                    )
                    .map_err(|e| corrupt(format!("shard record report: {e}")))?;
                    if job.done.insert(shard) {
                        job.committed.merge(&report, job.top_k);
                    }
                    if job.done.len() == job.shard_count && job.state == JobState::Running {
                        job.state = JobState::Completed;
                    }
                }
                "cancel" => {
                    let job = recovered.get_mut(&job_id).ok_or_else(|| {
                        corrupt(format!("cancel record for unknown job {job_id}"))
                    })?;
                    if job.state == JobState::Running {
                        job.state = JobState::Cancelled;
                    }
                }
                other => return Err(corrupt(format!("unknown record type `{other}`"))),
            }
        }

        let mut stats = RestoreStats::default();
        for (raw, mut job) in recovered {
            let id = JobId(raw);
            stats.jobs += 1;
            // Completed cacheable jobs re-feed the cache (idempotent for
            // snapshot-covered entries, necessary for replayed ones).
            if job.state == JobState::Completed && !job.cache_hit {
                if let Some(digest) = job.digest {
                    self.cache.insert(digest, job.committed.to_json());
                }
            }
            let mut engine = JobEngine::Archived;
            if job.state == JobState::Running {
                let rebuilt = job
                    .recipe
                    .as_ref()
                    .map(rebuild)
                    .transpose()
                    .ok()
                    .flatten()
                    .and_then(|(system, evaluator)| {
                        let flattener = Flattener::new(&system).ok()?;
                        (flattener.space().count() == job.combinations)
                            .then_some((Arc::new(flattener), evaluator))
                    });
                match rebuilt {
                    Some((flattener, evaluator)) => {
                        stats.resumed += 1;
                        for shard in 0..job.shard_count {
                            if !job.done.contains(&shard) {
                                stats.requeued_shards += 1;
                                self.scheduler
                                    .enqueue(&job.tenant, job.weight, (raw, shard));
                                self.trace.record(TraceEvent::WfqEnqueue {
                                    tenant: job.tenant.clone(),
                                    weight: job.weight,
                                    job: raw,
                                    shard,
                                });
                                self.metrics.add(CounterId::WfqEnqueues, 1);
                                if self.metrics.is_enabled() {
                                    self.metrics.tenant(&job.tenant).add_enqueue();
                                }
                            }
                        }
                        engine = JobEngine::Live {
                            flattener,
                            evaluator,
                        };
                    }
                    None => {
                        stats.unrecoverable += 1;
                        job.state = JobState::Cancelled;
                    }
                }
            }
            let incumbent = job.committed.best().map_or(u64::MAX, |best| best.cost);
            let shards = (0..job.shard_count)
                .map(|shard| {
                    if job.done.contains(&shard) {
                        ShardSlot::Done
                    } else {
                        ShardSlot::Pending
                    }
                })
                .collect();
            self.jobs.insert(
                id,
                Job {
                    name: job.name,
                    tenant: job.tenant,
                    weight: job.weight,
                    use_cache: job.use_cache,
                    shard_count: job.shard_count,
                    top_k: job.top_k,
                    combinations: job.combinations,
                    engine,
                    incumbent: Arc::new(AtomicU64::new(incumbent)),
                    cancelled: Arc::new(AtomicBool::new(job.state == JobState::Cancelled)),
                    state: job.state,
                    shards,
                    shards_done: job.done.len(),
                    staged: HashMap::new(),
                    committed: job.committed,
                    best_seen: None,
                    subscribers: Vec::new(),
                    digest: job.digest,
                    recipe: job.recipe,
                    cache_hit: job.cache_hit,
                    hedges_issued: job.hedges_issued,
                    hedge_wins: job.hedge_wins,
                    latencies: LatencyTracker::new(),
                },
            );
        }
        self.next_job = next_job.max(
            self.jobs
                .keys()
                .next_back()
                .map_or(0, |last| last.raw() + 1),
        );
        stats.cache_entries = self.cache.len();
        Ok(stats)
    }
}

/// The content address of a submission, when it is cacheable: requires a
/// recipe naming the system (the space alone underdetermines the flattened
/// graphs the evaluator sees) and a canonical evaluator spec.
fn cache_digest(
    recipe: Option<&JsonValue>,
    space_json: &JsonValue,
    evaluator_spec: Option<JsonValue>,
) -> Option<Digest> {
    let system = recipe?.get("system")?;
    let spec = evaluator_spec?;
    Some(digest_json(&JsonValue::object([
        ("system", system.clone()),
        ("space", space_json.clone()),
        ("evaluator", spec),
    ])))
}

fn submit_record(id: JobId, job: &Job) -> JsonValue {
    let mut members = vec![
        ("t".to_string(), JsonValue::string("submit")),
        ("job".to_string(), id.raw().to_json()),
        ("name".to_string(), job.name.to_json()),
        ("tenant".to_string(), job.tenant.to_json()),
        ("weight".to_string(), JsonValue::Int(i128::from(job.weight))),
        ("use_cache".to_string(), JsonValue::Bool(job.use_cache)),
        ("shards".to_string(), job.shard_count.to_json()),
        ("top_k".to_string(), job.top_k.to_json()),
        ("combinations".to_string(), job.combinations.to_json()),
        (
            "digest".to_string(),
            job.digest
                .as_ref()
                .map(ToJson::to_json)
                .unwrap_or(JsonValue::Null),
        ),
        (
            "recipe".to_string(),
            job.recipe.clone().unwrap_or(JsonValue::Null),
        ),
        ("cache_hit".to_string(), JsonValue::Bool(job.cache_hit)),
        ("state".to_string(), JsonValue::string(job.state.as_wire())),
    ];
    if job.cache_hit || job.state.is_terminal() {
        members.push(("committed".to_string(), job.committed.to_json()));
    }
    JsonValue::Object(members)
}

/// Intermediate per-job state while replaying snapshot + records.
struct RecoveredJob {
    id: u64,
    name: String,
    tenant: String,
    weight: u32,
    use_cache: bool,
    shard_count: usize,
    top_k: usize,
    combinations: usize,
    digest: Option<Digest>,
    recipe: Option<JsonValue>,
    cache_hit: bool,
    state: JobState,
    done: std::collections::BTreeSet<usize>,
    committed: ShardReport,
    hedges_issued: u64,
    hedge_wins: u64,
}

impl RecoveredJob {
    /// Parses either a snapshot job summary or a submit record — the two
    /// share every field this needs (`durable_summary` and `submit_record`
    /// are kept aligned).
    fn from_summary(value: &JsonValue) -> std::result::Result<RecoveredJob, String> {
        let field_u64 = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("job summary missing {name}"))
        };
        // Checked narrowing: a WAL written on a 64-bit host must not be
        // silently truncated when restored on a platform with a smaller
        // `usize` — `as` would wrap the count and corrupt the census.
        let field_usize = |name: &str| {
            let raw = field_u64(name)?;
            usize::try_from(raw)
                .map_err(|_| format!("job summary field {name} ({raw}) overflows usize"))
        };
        let field_str = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("job summary missing {name}"))
        };
        let state = JobState::from_wire(field_str("state")?)
            .ok_or_else(|| "job summary has unknown state".to_string())?;
        let digest = match value.get("digest") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(Digest::from_json(other).map_err(|e| format!("job digest: {e}"))?),
        };
        let recipe = match value.get("recipe") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(other.clone()),
        };
        let done: std::collections::BTreeSet<usize> = match value.get("done") {
            None => std::collections::BTreeSet::new(),
            Some(list) => Vec::<usize>::from_json(list)
                .map_err(|e| format!("job done list: {e}"))?
                .into_iter()
                .collect(),
        };
        let committed = match value.get("committed") {
            None => ShardReport::default(),
            Some(report) => {
                ShardReport::from_json(report).map_err(|e| format!("job committed: {e}"))?
            }
        };
        Ok(RecoveredJob {
            id: field_u64("job")?,
            name: field_str("name")?.to_string(),
            tenant: field_str("tenant")?.to_string(),
            weight: u32::try_from(field_u64("weight")?).unwrap_or(1).max(1),
            use_cache: value
                .get("use_cache")
                .and_then(JsonValue::as_bool)
                .unwrap_or(true),
            shard_count: field_usize("shards")?,
            top_k: field_usize("top_k")?.max(1),
            combinations: field_usize("combinations")?,
            digest,
            recipe,
            cache_hit: value
                .get("cache_hit")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            state,
            done,
            committed,
            hedges_issued: value
                .get("hedges_issued")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            hedge_wins: value
                .get("hedge_wins")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{MemorySink, MemoryStore};
    use crate::evaluator::{Evaluation, FnEvaluator};
    use spi_store::trace::TraceReplay;
    use spi_workloads::scaling_system;
    use std::sync::Mutex;

    fn test_evaluator() -> Arc<dyn Evaluator> {
        Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            Ok(Evaluation {
                cost: (index as u64 * 7) % 31,
                feasible: true,
                detail: String::new(),
            })
        }))
    }

    fn registry_with_job(shards: usize) -> (JobRegistry, JobId) {
        let system = scaling_system(3, 2).unwrap();
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    name: "t".into(),
                    shard_count: shards,
                    top_k: 4,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        (registry, id)
    }

    fn report_with(index: usize, cost: u64) -> ShardReport {
        let mut report = ShardReport {
            evaluated: 1,
            feasible: 1,
            ..ShardReport::default()
        };
        report.record(
            BestVariant {
                index,
                cost,
                choice: spi_variants::VariantChoice::new(),
                detail: String::new(),
            },
            4,
        );
        report
    }

    #[test]
    fn lease_complete_drains_every_shard_once() {
        let (mut registry, id) = registry_with_job(4);
        let now = Instant::now();
        let mut seen = Vec::new();
        while let Some(lease) = registry.lease(now) {
            seen.push(lease.shard);
            let finished = registry
                .complete_shard(lease.lease, report_with(lease.shard, 10), now)
                .unwrap();
            assert_eq!(finished, seen.len() == 4);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4);
        assert_eq!(status.tenant, "default");
        assert!(!status.cache_hit);
    }

    #[test]
    fn stale_lease_after_expiry_is_rejected_and_shard_requeued() {
        let (mut registry, id) = registry_with_job(1);
        let t0 = Instant::now();
        let zombie = registry.lease(t0).unwrap();
        registry
            .report_batch(zombie.lease, report_with(0, 10), t0)
            .unwrap();
        // Nobody hears from the worker for longer than the timeout.
        let late = t0 + Duration::from_secs(61);
        assert_eq!(registry.expire(late), 1);
        // The zombie's partial work is gone and its lease dead.
        assert_eq!(registry.poll(id).unwrap().report.evaluated, 0);
        assert!(matches!(
            registry.report_batch(zombie.lease, report_with(1, 5), late),
            Err(ExploreError::StaleLease(_))
        ));
        assert!(matches!(
            registry.complete_shard(zombie.lease, report_with(1, 5), late),
            Err(ExploreError::StaleLease(_))
        ));
        // A fresh lease drains the shard; the final count is exact.
        let fresh = registry.lease(late).unwrap();
        assert_eq!(fresh.shard, zombie.shard);
        registry
            .complete_shard(fresh.lease, report_with(0, 10), late)
            .unwrap();
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 1);
    }

    #[test]
    fn batches_renew_the_lease_deadline() {
        let (mut registry, _id) = registry_with_job(1);
        let t0 = Instant::now();
        let lease = registry.lease(t0).unwrap();
        // Keep batching just before every deadline: the lease must survive.
        let mut now = t0;
        for _ in 0..4 {
            now += Duration::from_secs(29);
            assert_eq!(registry.expire(now), 0);
            registry
                .report_batch(lease.lease, report_with(0, 10), now)
                .unwrap();
        }
        assert!(registry
            .complete_shard(lease.lease, ShardReport::default(), now)
            .unwrap());
    }

    #[test]
    fn cancel_invalidates_leases_and_keeps_partial_results() {
        let (mut registry, id) = registry_with_job(4);
        let now = Instant::now();
        let first = registry.lease(now).unwrap();
        registry
            .complete_shard(first.lease, report_with(0, 10), now)
            .unwrap();
        let in_flight = registry.lease(now).unwrap();
        let status = registry.cancel(id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.report.evaluated, 1, "committed shard survives");
        assert!(in_flight.cancelled.load(Ordering::Relaxed));
        assert!(matches!(
            registry.complete_shard(in_flight.lease, report_with(9, 1), now),
            Err(ExploreError::StaleLease(_))
        ));
        // No further leases; cancel is idempotent.
        assert!(registry.lease(now).is_none());
        assert_eq!(registry.cancel(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn events_report_improvements_and_completion() {
        let (mut registry, id) = registry_with_job(2);
        let events = registry.subscribe(id).unwrap();
        let now = Instant::now();
        let a = registry.lease(now).unwrap();
        let b = registry.lease(now).unwrap();
        registry
            .complete_shard(a.lease, report_with(3, 20), now)
            .unwrap();
        registry
            .complete_shard(b.lease, report_with(5, 10), now)
            .unwrap();
        let collected: Vec<JobEvent> = events.try_iter().collect();
        assert!(matches!(
            collected[0],
            JobEvent::Improved { ref best } if best.cost == 20
        ));
        assert!(collected
            .iter()
            .any(|e| matches!(e, JobEvent::Improved { best } if best.cost == 10)));
        assert!(matches!(
            collected.last().unwrap(),
            JobEvent::Finished { status } if status.state == JobState::Completed
        ));
        // Subscribing to a terminal job yields an immediate Finished.
        let late = registry.subscribe(id).unwrap();
        assert!(matches!(
            late.try_iter().next(),
            Some(JobEvent::Finished { .. })
        ));
    }

    #[test]
    fn shard_count_is_clamped_and_empty_spaces_complete_immediately() {
        let system = scaling_system(2, 2).unwrap(); // 4 combinations
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    shard_count: 64,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        assert_eq!(registry.poll(id).unwrap().shard_count, 4);

        let empty = VariantSystem::new(spi_model::SpiGraph::new("empty"));
        let done = registry
            .submit(&empty, JobSpec::default(), test_evaluator())
            .unwrap();
        let status = registry.poll(done).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.combinations, 0);
        assert!(registry.lease(Instant::now()).map(|l| l.job) != Some(done));
    }

    #[test]
    fn invalid_specs_and_unknown_jobs_are_rejected() {
        let system = scaling_system(2, 2).unwrap();
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        assert!(matches!(
            registry.submit(
                &system,
                JobSpec {
                    shard_count: 0,
                    ..JobSpec::default()
                },
                test_evaluator(),
            ),
            Err(ExploreError::InvalidSpec(_))
        ));
        let ghost = JobId::from_raw(99);
        assert!(matches!(
            registry.poll(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
        assert!(matches!(
            registry.cancel(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
        assert!(matches!(
            registry.subscribe(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
    }

    // --- fair scheduling -----------------------------------------------------------

    #[test]
    fn late_tenant_interleaves_instead_of_queuing_behind_the_whale() {
        let system = scaling_system(6, 2).unwrap(); // 64 combinations
        let small = scaling_system(3, 2).unwrap(); // 8 combinations
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let whale = registry
            .submit(
                &system,
                JobSpec {
                    name: "whale".into(),
                    tenant: "whale".into(),
                    shard_count: 32,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        let minnow = registry
            .submit(
                &small,
                JobSpec {
                    name: "minnow".into(),
                    tenant: "minnow".into(),
                    shard_count: 4,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        // Drain serially; count whale dispatches before the minnow finishes.
        let now = Instant::now();
        let mut whale_before_minnow_done = 0;
        loop {
            let lease = registry.lease(now).unwrap();
            if lease.job == whale {
                whale_before_minnow_done += 1;
            }
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 5), now)
                .unwrap();
            if registry.poll(minnow).unwrap().state.is_terminal() {
                break;
            }
        }
        // Equal weights → strict alternation: the minnow's 4 shards finish
        // within ~5 whale dispatches, not after all 32.
        assert!(
            whale_before_minnow_done <= 5,
            "whale got {whale_before_minnow_done} dispatches before the minnow finished"
        );
        // The whale still completes fully afterwards.
        while let Some(lease) = registry.lease(now) {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 5), now)
                .unwrap();
        }
        assert_eq!(registry.poll(whale).unwrap().state, JobState::Completed);
        assert_eq!(registry.poll(whale).unwrap().report.evaluated, 32);
    }

    // --- hedged re-leasing ---------------------------------------------------------

    /// Registry with one 4-shard job and hedging tuned for the test clock.
    fn hedging_registry() -> (JobRegistry, JobId) {
        let system = scaling_system(3, 2).unwrap(); // 8 combinations
        let mut registry = JobRegistry::with_config(RegistryConfig {
            lease_timeout: Duration::from_secs(1000),
            hedge: HedgeConfig {
                enabled: true,
                quantile_pct: 50,
                multiplier_pct: 200,
                min_samples: 3,
                max_hedges: 1,
            },
            ..RegistryConfig::default()
        });
        let id = registry
            .submit(
                &system,
                JobSpec {
                    name: "hedge".into(),
                    shard_count: 4,
                    top_k: 8,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        (registry, id)
    }

    #[test]
    fn straggler_shard_gets_a_hedge_and_first_commit_wins() {
        let (mut registry, id) = hedging_registry();
        let t0 = Instant::now();
        // Lease all four shards; complete three quickly (1s each), leave one
        // straggling.
        let leases: Vec<Lease> = (0..4).map(|_| registry.lease(t0).unwrap()).collect();
        let t1 = t0 + Duration::from_secs(1);
        for lease in &leases[..3] {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 10), t1)
                .unwrap();
        }
        // p50 of {1s,1s,1s} = 1s, threshold 2s: at t0+1s the straggler is not
        // yet overdue...
        assert!(
            registry.lease(t1).is_none(),
            "no hedge before the threshold"
        );
        // ... at t0+3s it is.
        let t3 = t0 + Duration::from_secs(3);
        let hedge = registry.lease(t3).expect("straggler gets a hedge");
        assert!(hedge.hedged);
        assert_eq!(hedge.shard, leases[3].shard);
        assert_eq!(registry.poll(id).unwrap().hedges_issued, 1);
        // Only one hedge per shard (max_hedges = 1).
        assert!(registry.lease(t3).is_none());

        // The hedge commits first and wins the shard.
        registry
            .complete_shard(hedge.lease, report_with(hedge.shard, 3), t3)
            .unwrap();
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4, "exactly-once accounting holds");
        assert_eq!(status.hedge_wins, 1);
        // The hedged-over original is stale now.
        assert!(matches!(
            registry.complete_shard(leases[3].lease, report_with(9, 1), t3),
            Err(ExploreError::StaleLease(_))
        ));
    }

    #[test]
    fn original_lease_beating_its_hedge_is_not_a_hedge_win() {
        let (mut registry, id) = hedging_registry();
        let t0 = Instant::now();
        let leases: Vec<Lease> = (0..4).map(|_| registry.lease(t0).unwrap()).collect();
        let t1 = t0 + Duration::from_secs(1);
        for lease in &leases[..3] {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 10), t1)
                .unwrap();
        }
        let t3 = t0 + Duration::from_secs(3);
        let hedge = registry.lease(t3).expect("straggler gets a hedge");
        // The original wakes up and commits first: hedge turns stale.
        registry
            .complete_shard(leases[3].lease, report_with(leases[3].shard, 2), t3)
            .unwrap();
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4);
        assert_eq!(status.hedges_issued, 1);
        assert_eq!(status.hedge_wins, 0);
        assert!(matches!(
            registry.complete_shard(hedge.lease, report_with(9, 1), t3),
            Err(ExploreError::StaleLease(_))
        ));
    }

    #[test]
    fn expired_hedge_leaves_the_original_running() {
        let (mut registry, id) = hedging_registry();
        let t0 = Instant::now();
        let leases: Vec<Lease> = (0..4).map(|_| registry.lease(t0).unwrap()).collect();
        let t1 = t0 + Duration::from_secs(1);
        for lease in &leases[..3] {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 10), t1)
                .unwrap();
        }
        let t3 = t0 + Duration::from_secs(3);
        let hedge = registry.lease(t3).expect("hedge granted");
        // Keep the original alive with batches while the hedge goes silent
        // past its deadline.
        let expiry = t3 + Duration::from_secs(1001);
        registry
            .report_batch(leases[3].lease, ShardReport::default(), expiry)
            .unwrap();
        assert_eq!(registry.expire(expiry), 1, "only the silent hedge expires");
        assert!(matches!(
            registry.report_batch(hedge.lease, ShardReport::default(), expiry),
            Err(ExploreError::StaleLease(_))
        ));
        // The shard is still leased (not requeued): the original completes it.
        registry
            .complete_shard(leases[3].lease, report_with(leases[3].shard, 1), expiry)
            .unwrap();
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4);
    }

    // --- result cache + durability ---------------------------------------------------

    fn cacheable_evaluator(counter: Arc<AtomicU64>) -> Arc<dyn Evaluator> {
        Arc::new(
            FnEvaluator::new(move |index, _choice, _graph| {
                counter.fetch_add(1, Ordering::Relaxed);
                Ok(Evaluation {
                    cost: (index as u64 * 7) % 31,
                    feasible: true,
                    detail: String::new(),
                })
            })
            .with_spec(JsonValue::object([("kind", JsonValue::string("counting"))])),
        )
    }

    fn recipe_for(interfaces: usize) -> JsonValue {
        JsonValue::object([(
            "system",
            JsonValue::object([(
                "scaling",
                JsonValue::object([
                    ("interfaces", interfaces.to_json()),
                    ("clusters", 2usize.to_json()),
                ]),
            )]),
        )])
    }

    #[test]
    fn identical_resubmission_is_served_from_the_cache() {
        let system = scaling_system(3, 2).unwrap(); // 8 combinations
        let counter = Arc::new(AtomicU64::new(0));
        let evaluator = cacheable_evaluator(Arc::clone(&counter));
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let now = Instant::now();

        let first = registry
            .submit_with_recipe(
                &system,
                JobSpec::default(),
                Arc::clone(&evaluator),
                Some(recipe_for(3)),
            )
            .unwrap();
        while let Some(lease) = registry.lease(now) {
            registry
                .complete_shard(
                    lease.lease,
                    report_with(lease.shard, lease.shard as u64),
                    now,
                )
                .unwrap();
        }
        let first_status = registry.poll(first).unwrap();
        assert_eq!(first_status.state, JobState::Completed);
        assert_eq!(registry.cache_stats().0, 1, "completion fed the cache");

        // Identical resubmission: served at birth, no lease ever granted.
        let second = registry
            .submit_with_recipe(
                &system,
                JobSpec::default(),
                Arc::clone(&evaluator),
                Some(recipe_for(3)),
            )
            .unwrap();
        let status = registry.poll(second).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert!(status.cache_hit);
        assert_eq!(status.report.evaluated, 0, "no worker evaluation ran");
        assert_eq!(status.shard_count, 0);
        assert_eq!(
            status.best().map(|b| (b.cost, b.index)),
            first_status.best().map(|b| (b.cost, b.index)),
            "the cached optimum is served"
        );
        assert!(registry.lease(now).is_none(), "worker pool untouched");

        // A different recipe (different system) misses.
        let other = scaling_system(2, 2).unwrap();
        let third = registry
            .submit_with_recipe(&other, JobSpec::default(), evaluator, Some(recipe_for(2)))
            .unwrap();
        assert!(!registry.poll(third).unwrap().cache_hit);

        // use_cache: false bypasses the lookup.
        let fourth = registry
            .submit_with_recipe(
                &system,
                JobSpec {
                    use_cache: false,
                    ..JobSpec::default()
                },
                cacheable_evaluator(Arc::new(AtomicU64::new(0))),
                Some(recipe_for(3)),
            )
            .unwrap();
        assert!(!registry.poll(fourth).unwrap().cache_hit);
    }

    #[test]
    fn cache_limit_evicts_old_results_and_resubmission_recomputes() {
        let mut registry = JobRegistry::with_config(RegistryConfig {
            cache_limit: CacheLimit::entries(1),
            ..RegistryConfig::default()
        });
        let now = Instant::now();
        for interfaces in [2usize, 3] {
            let system = scaling_system(interfaces, 2).unwrap();
            registry
                .submit_with_recipe(
                    &system,
                    JobSpec::default(),
                    cacheable_evaluator(Arc::new(AtomicU64::new(0))),
                    Some(recipe_for(interfaces)),
                )
                .unwrap();
            while let Some(lease) = registry.lease(now) {
                registry
                    .complete_shard(
                        lease.lease,
                        report_with(lease.shard, lease.shard as u64),
                        now,
                    )
                    .unwrap();
            }
        }
        assert_eq!(registry.cache_stats().0, 1, "bound holds across jobs");

        // The first (evicted) result must recompute; the second still hits.
        let system = scaling_system(2, 2).unwrap();
        let evicted = registry
            .submit_with_recipe(
                &system,
                JobSpec::default(),
                cacheable_evaluator(Arc::new(AtomicU64::new(0))),
                Some(recipe_for(2)),
            )
            .unwrap();
        assert!(!registry.poll(evicted).unwrap().cache_hit);
        let system = scaling_system(3, 2).unwrap();
        let kept = registry
            .submit_with_recipe(
                &system,
                JobSpec::default(),
                cacheable_evaluator(Arc::new(AtomicU64::new(0))),
                Some(recipe_for(3)),
            )
            .unwrap();
        assert!(registry.poll(kept).unwrap().cache_hit);
    }

    /// In-memory sink that reports a real byte size, for exercising the
    /// size-triggered auto-compaction without touching the filesystem.
    struct SizedSink {
        bytes: u64,
        compactions: Arc<AtomicU64>,
    }

    impl DurabilitySink for SizedSink {
        fn append(&mut self, record: &JsonValue) -> std::result::Result<(), String> {
            self.bytes += record.to_line().len() as u64 + 1;
            Ok(())
        }

        fn compact(&mut self, _snapshot: &JsonValue) -> std::result::Result<u64, String> {
            let reclaimed = self.bytes;
            self.bytes = 0;
            self.compactions.fetch_add(1, Ordering::Relaxed);
            Ok(reclaimed)
        }

        fn log_bytes(&self) -> u64 {
            self.bytes
        }
    }

    #[test]
    fn oversized_log_triggers_compaction_on_commit() {
        let system = scaling_system(3, 2).unwrap();
        let compactions = Arc::new(AtomicU64::new(0));
        let mut registry = JobRegistry::with_config(RegistryConfig {
            // Tiny budget: the submit record alone exceeds it, so the very
            // first committed shard must compact.
            compact_log_bytes: Some(64),
            ..RegistryConfig::default()
        });
        registry.set_sink(Box::new(SizedSink {
            bytes: 0,
            compactions: Arc::clone(&compactions),
        }));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    shard_count: 4,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        let now = Instant::now();
        while let Some(lease) = registry.lease(now) {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 5), now)
                .unwrap();
        }
        assert_eq!(registry.poll(id).unwrap().state, JobState::Completed);
        assert!(
            registry.auto_compactions() >= 1,
            "commits past the byte budget must compact mid-flight"
        );
        assert_eq!(
            registry.auto_compactions(),
            compactions.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn unbudgeted_registries_never_auto_compact() {
        let system = scaling_system(3, 2).unwrap();
        let compactions = Arc::new(AtomicU64::new(0));
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        registry.set_sink(Box::new(SizedSink {
            bytes: 0,
            compactions: Arc::clone(&compactions),
        }));
        registry
            .submit(&system, JobSpec::default(), test_evaluator())
            .unwrap();
        let now = Instant::now();
        while let Some(lease) = registry.lease(now) {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 5), now)
                .unwrap();
        }
        assert_eq!(registry.auto_compactions(), 0);
        assert_eq!(compactions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn commits_are_write_ahead_and_sink_failures_abort_them() {
        let system = scaling_system(3, 2).unwrap();
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        registry.set_sink(Box::new(MemorySink::new(Arc::clone(&store))));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    shard_count: 2,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        let now = Instant::now();
        let lease = registry.lease(now).unwrap();
        registry
            .complete_shard(lease.lease, report_with(lease.shard, 5), now)
            .unwrap();
        {
            let seen = store.lock().unwrap().records.clone();
            assert_eq!(seen.len(), 2, "submit + shard commit recorded");
            assert_eq!(seen[0].get("t").unwrap().as_str(), Some("submit"));
            assert_eq!(seen[1].get("t").unwrap().as_str(), Some("shard"));
        }

        // A failing sink vetoes the commit: the lease stays live, nothing
        // merges (not even staged state), and retrying with the *same* delta
        // once the sink heals neither loses nor double-counts it.
        registry.set_sink(Box::new(MemorySink::failing(Arc::clone(&store))));
        let lease = registry.lease(now).unwrap();
        let delta = report_with(lease.shard, 5);
        assert!(matches!(
            registry.complete_shard(lease.lease, delta.clone(), now),
            Err(ExploreError::Store(_))
        ));
        assert_eq!(registry.poll(id).unwrap().shards_done, 1);
        assert_eq!(
            registry.poll(id).unwrap().report.evaluated,
            1,
            "a vetoed commit must not stage its delta"
        );
        registry.set_sink(Box::new(MemorySink::new(Arc::clone(&store))));
        assert!(registry.complete_shard(lease.lease, delta, now).unwrap());
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 2, "same-delta retry counts once");

        // Cancel on a failing sink is refused too.
        registry.set_sink(Box::new(MemorySink::failing(Arc::clone(&store))));
        let running = registry
            .submit(&system, JobSpec::default(), test_evaluator())
            .err();
        assert!(matches!(running, Some(ExploreError::Store(_))));
    }

    #[test]
    fn snapshot_and_records_restore_to_the_same_census() {
        let system = scaling_system(3, 2).unwrap(); // 8 combinations
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        registry.set_sink(Box::new(MemorySink::new(Arc::clone(&store))));
        let evaluator = cacheable_evaluator(Arc::new(AtomicU64::new(0)));
        let id = registry
            .submit_with_recipe(
                &system,
                JobSpec {
                    shard_count: 4,
                    ..JobSpec::default()
                },
                evaluator,
                Some(recipe_for(3)),
            )
            .unwrap();
        let now = Instant::now();
        // Commit two of four shards, then "crash".
        for _ in 0..2 {
            let lease = registry.lease(now).unwrap();
            registry
                .complete_shard(
                    lease.lease,
                    report_with(lease.shard, lease.shard as u64),
                    now,
                )
                .unwrap();
        }
        let committed_before = registry.poll(id).unwrap().report.clone();
        let snapshot = registry.durable_snapshot();

        // Restore from snapshot only (records compacted away).
        let rebuild: &RebuildFn<'_> = &|recipe: &JsonValue| {
            let interfaces = recipe
                .get("system")
                .and_then(|s| s.get("scaling"))
                .and_then(|s| s.get("interfaces"))
                .and_then(JsonValue::as_usize)
                .unwrap();
            Ok((
                scaling_system(interfaces, 2).unwrap(),
                cacheable_evaluator(Arc::new(AtomicU64::new(0))) as Arc<dyn Evaluator>,
            ))
        };
        let mut recovered = JobRegistry::new(Duration::from_secs(30));
        let stats = recovered.restore(Some(&snapshot), &[], rebuild).unwrap();
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.resumed, 1);
        assert_eq!(stats.requeued_shards, 2);
        assert_eq!(recovered.poll(id).unwrap().report, committed_before);

        // Restore from raw records only (no snapshot) agrees.
        let raw = store.lock().unwrap().records.clone();
        let mut replayed = JobRegistry::new(Duration::from_secs(30));
        let stats = replayed.restore(None, &raw, rebuild).unwrap();
        assert_eq!(stats.resumed, 1);
        assert_eq!(replayed.poll(id).unwrap().report, committed_before);

        // Finishing the recovered registry yields the exact census.
        while let Some(lease) = recovered.lease(now) {
            recovered
                .complete_shard(
                    lease.lease,
                    report_with(lease.shard, lease.shard as u64),
                    now,
                )
                .unwrap();
        }
        let status = recovered.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4);
        // Completion fed the restored cache.
        assert_eq!(recovered.cache_stats().0, 1);
        // Fresh submissions continue the id sequence without collision.
        let fresh = recovered
            .submit(&system, JobSpec::default(), test_evaluator())
            .unwrap();
        assert!(fresh.raw() > id.raw());
    }

    #[test]
    fn running_job_without_a_recipe_restores_as_cancelled_with_its_results() {
        let system = scaling_system(3, 2).unwrap();
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        registry.set_sink(Box::new(MemorySink::new(Arc::clone(&store))));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    shard_count: 4,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        let now = Instant::now();
        let lease = registry.lease(now).unwrap();
        registry
            .complete_shard(lease.lease, report_with(lease.shard, 5), now)
            .unwrap();

        let raw = store.lock().unwrap().records.clone();
        let mut recovered = JobRegistry::new(Duration::from_secs(30));
        let rebuild: &RebuildFn<'_> =
            &|_recipe: &JsonValue| Err(ExploreError::Workload("no rebuild".into()));
        let stats = recovered.restore(None, &raw, rebuild).unwrap();
        assert_eq!(stats.unrecoverable, 1);
        let status = recovered.poll(id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.report.evaluated, 1, "committed partials survive");
        assert!(recovered.lease(now).is_none());
    }

    /// A tenant whose weight is rewritten mid-backlog (the scheduler's
    /// last-submission-wins rule) must still drain within the replay
    /// checker's proportional-share slack — the finish tag computed under
    /// the old weight is exactly what [`spi_store::trace::FAIRNESS_SLACK`]
    /// budgets for.
    #[test]
    fn mid_backlog_weight_change_keeps_the_trace_replayable() {
        let system = scaling_system(3, 2).unwrap(); // 8 variants
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let submit = |registry: &mut JobRegistry, tenant: &str, weight: u32| {
            registry
                .submit(
                    &system,
                    JobSpec {
                        name: tenant.into(),
                        shard_count: 8,
                        top_k: 2,
                        tenant: tenant.into(),
                        weight,
                        ..JobSpec::default()
                    },
                    test_evaluator(),
                )
                .unwrap()
        };
        submit(&mut registry, "steady", 1);
        submit(&mut registry, "shifty", 1);
        // Mid-backlog: shifty resubmits at weight 4 while its first job's
        // shards are still queued, rewriting the live queue's weight.
        submit(&mut registry, "shifty", 4);

        let now = Instant::now();
        while let Some(lease) = registry.lease(now) {
            registry
                .complete_shard(lease.lease, report_with(lease.shard, 1), now)
                .unwrap();
        }

        let drained = registry.drain_trace();
        assert_eq!(drained.dropped, 0, "default ring holds a small run");
        let report = TraceReplay::check(&drained.events);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.dispatches, 24);
        assert_eq!(report.commits, 24);
        assert_eq!(report.committed_shards, 24);
    }

    #[test]
    fn waitgraph_snapshot_matches_registry_state() {
        let (mut registry, id) = registry_with_job(4);
        let now = Instant::now();
        let held = registry.lease_as("w-0", now).unwrap();
        let finished = registry.lease_as("w-1", now).unwrap();
        registry
            .complete_shard(finished.lease, report_with(finished.shard, 3), now)
            .unwrap();

        let graph = registry.waitgraph();
        graph.validate().unwrap();
        assert_eq!(graph.nodes_of_kind("job").count(), 1);
        // 4 shards, 1 done: done shards wait on nothing and are omitted.
        assert_eq!(graph.nodes_of_kind("shard").count(), 3);
        assert_eq!(graph.nodes_of_kind("lease").count(), 1);
        assert_eq!(graph.nodes_of_kind("tenant").count(), 1);
        // w-1's lease is spent, so only w-0 appears; no sink, no store node.
        assert_eq!(graph.nodes_of_kind("worker").count(), 1);
        assert_eq!(graph.nodes_of_kind("store").count(), 0);

        let job_node = format!("job:{}", id.raw());
        assert!(graph.needs_of(&job_node).any(|n| n == "tenant:default"));
        let shard_node = format!("shard:{}/{}", id.raw(), held.shard);
        let lease_node = format!("lease:{}", held.lease.raw());
        assert!(graph.needs_of(&shard_node).any(|n| n == lease_node));
        assert_eq!(
            graph.needs_of(&lease_node).collect::<Vec<_>>(),
            vec!["worker:w-0"]
        );

        let status = registry.poll(id).unwrap();
        let attr = |key: &str| {
            graph
                .node(&job_node)
                .unwrap()
                .attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(attr("shards_done"), status.shards_done.to_string());
        assert_eq!(attr("state"), status.state.to_string());
    }

    /// Voluntary returns and deadline expiries are distinct trace events, and
    /// both leave a replay-clean trace (the requeue is recorded, so the
    /// replayed backlog never underflows).
    #[test]
    fn expiry_and_abandon_are_distinguished_in_the_trace() {
        let (mut registry, _id) = registry_with_job(2);
        let t0 = Instant::now();
        let _doomed = registry.lease(t0).unwrap();
        let returned = registry.lease(t0).unwrap();
        registry.abandon(returned.lease);
        assert_eq!(registry.expire(t0 + Duration::from_secs(61)), 1);

        let drained = registry.drain_trace();
        let kinds: Vec<&str> = drained
            .events
            .iter()
            .map(|traced| traced.event.kind())
            .collect();
        assert!(kinds.contains(&"lease_abandon"));
        assert!(kinds.contains(&"lease_expire"));
        let report = TraceReplay::check(&drained.events);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    /// Satellite of the WAL-restore fix: `shards`/`top_k`/`combinations` are
    /// narrowed with `try_from`, not `as` — a count that fits `usize` round
    /// trips exactly, and one that does not is a protocol error instead of a
    /// silent truncation.
    #[test]
    fn recovered_job_narrows_counts_checked() {
        let summary = JsonValue::object([
            ("job", JsonValue::Int(1)),
            ("name", JsonValue::string("big")),
            ("tenant", JsonValue::string("default")),
            ("weight", JsonValue::Int(1)),
            ("shards", JsonValue::Int(1 << 40)),
            ("top_k", JsonValue::Int(8)),
            ("combinations", JsonValue::Int(1 << 40)),
            ("state", JsonValue::string("running")),
        ]);
        #[cfg(target_pointer_width = "64")]
        {
            let job = RecoveredJob::from_summary(&summary).unwrap();
            assert_eq!(job.shard_count, 1usize << 40);
            assert_eq!(job.combinations, 1usize << 40);
        }
        #[cfg(target_pointer_width = "32")]
        {
            let err = RecoveredJob::from_summary(&summary).unwrap_err();
            assert!(err.contains("overflows"), "got: {err}");
        }
    }
}
