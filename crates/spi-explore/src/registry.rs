//! The job registry: the lease-protocol state machine of the service.
//!
//! The registry is deliberately a **pure, synchronous state machine** — every
//! method takes `&mut self` (callers wrap it in a mutex) and time enters only
//! as explicit [`Instant`] parameters. That makes the whole lease protocol
//! deterministic under test: the property tests drive simulated workers,
//! crashes, cancellations and clock advances through the same code the real
//! worker pool runs, with no sleeping and no racing.
//!
//! # The protocol
//!
//! A submitted job covers a variant space split into `shard_count` **strided
//! shards**: shard `s` owns the variant indices `s, s + count, s + 2·count, …`
//! (the stride rides on the `O(axes)` `nth` of the lazy space iterator, so a
//! shard never decodes another shard's combinations). Shards move through
//! three states:
//!
//! ```text
//!                    lease()                    complete_shard()
//!   Pending ───────────────────────▶ Leased ─────────────────────▶ Done
//!      ▲                               │
//!      └───────────────────────────────┘
//!        expire() past the deadline / abandon()
//! ```
//!
//! Every lease carries a fresh [`LeaseId`]. Batches and completions are only
//! accepted from the lease currently holding the shard — work reported under
//! an expired, abandoned or cancelled lease gets [`ExploreError::StaleLease`]
//! and is discarded. Combined with staging (below) this yields the service's
//! core accounting guarantee: **every shard is counted exactly once** in the
//! final aggregate, no matter how many times workers crashed, stalled or
//! raced on it.
//!
//! # Staging vs committing
//!
//! Batch deltas merge into a per-lease **staged** report; only when the lease
//! completes its shard does the staged report merge into the job's
//! **committed** aggregate. A lease that dies mid-shard takes its staged
//! partial results with it — the re-leased shard starts from zero, so nothing
//! is double-counted. Poll snapshots expose `committed + staged` for live
//! progress (observational; staged parts may vanish on expiry), while the
//! terminal report is committed-only and exact.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use spi_variants::{Flattener, VariantSystem};

use crate::error::ExploreError;
use crate::evaluator::Evaluator;
use crate::report::{BestVariant, ShardReport};
use crate::Result;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Raw numeric id (the wire representation).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a job id from its wire representation.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Identifier of one lease of one shard; never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(u64);

impl LeaseId {
    /// Raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a lease id from its raw representation.
    pub fn from_raw(raw: u64) -> Self {
        LeaseId(raw)
    }
}

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// Life-cycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Shards are pending or in flight.
    Running,
    /// Every shard completed; the committed aggregate is final and exact.
    Completed,
    /// Cancelled by a client; the committed aggregate holds the partial
    /// results of the shards that completed before the cancellation.
    Cancelled,
}

impl JobState {
    /// Whether the job will never change again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Running)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobState::Running => write!(f, "running"),
            JobState::Completed => write!(f, "completed"),
            JobState::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Client-tunable parameters of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable job name (for status displays; not unique).
    pub name: String,
    /// Number of strided shards the space is split into. Clamped to the
    /// combination count — an all-empty shard would be pure lease traffic.
    pub shard_count: usize,
    /// How many of the cheapest variants to retain.
    pub top_k: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "exploration".to_string(),
            shard_count: 16,
            top_k: 8,
        }
    }
}

/// A leased shard: everything a worker needs to drain it without touching the
/// registry (the `Arc`s are shared with the job, so incumbent updates and
/// cancellation are visible both ways while the registry lock is free).
#[derive(Clone)]
pub struct Lease {
    /// The job this shard belongs to.
    pub job: JobId,
    /// The lease token; batches and the completion must cite it.
    pub lease: LeaseId,
    /// Strided shard index in `0..shard_count`.
    pub shard: usize,
    /// Total shard count of the job (the stride).
    pub shard_count: usize,
    /// Top-K cap for the shard's report.
    pub top_k: usize,
    /// The job's shared flattening machine.
    pub flattener: Arc<Flattener>,
    /// The job's evaluator.
    pub evaluator: Arc<dyn Evaluator>,
    /// Job-wide best feasible cost (`u64::MAX` until a first result); workers
    /// `fetch_min` it and prune against it across shards.
    pub incumbent: Arc<AtomicU64>,
    /// Set when the job is cancelled; workers abandon the drain promptly.
    pub cancelled: Arc<AtomicBool>,
    /// When the lease expires if neither batched nor completed.
    pub deadline: Instant,
    /// How often the drain should flush *at the latest* (half the registry's
    /// lease timeout): every flush renews the deadline, so respecting this
    /// interval keeps the lease alive however slow the evaluator is.
    pub renew_interval: Duration,
}

/// Progress events streamed to [`JobRegistry::subscribe`]rs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// A batch improved the job-wide best variant.
    Improved {
        /// The new best.
        best: BestVariant,
    },
    /// A shard's staged report was committed.
    ShardCompleted {
        /// Which shard completed.
        shard: usize,
        /// Committed shards so far.
        shards_done: usize,
        /// Total shards of the job.
        shard_count: usize,
    },
    /// The job reached a terminal state; no further events follow.
    Finished {
        /// The terminal snapshot.
        status: JobStatus,
    },
}

/// A point-in-time snapshot of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job.
    pub job: JobId,
    /// Its display name.
    pub name: String,
    /// Life-cycle state.
    pub state: JobState,
    /// Size of the variant space.
    pub combinations: usize,
    /// Total shards.
    pub shard_count: usize,
    /// Committed shards.
    pub shards_done: usize,
    /// Shards currently under lease.
    pub shards_in_flight: usize,
    /// Merged counters: committed plus currently-staged (staged parts are
    /// observational — they vanish if their lease expires; exact once the
    /// state is terminal).
    pub report: ShardReport,
}

impl JobStatus {
    /// The best variant found so far, if any shard reported a feasible one.
    pub fn best(&self) -> Option<&BestVariant> {
        self.report.best()
    }
}

enum ShardSlot {
    Pending,
    /// Under lease; the owning [`LeaseId`] is tracked in
    /// [`JobRegistry::leases`], the slot only carries the renewable deadline.
    Leased {
        deadline: Instant,
    },
    Done,
}

struct Job {
    name: String,
    shard_count: usize,
    top_k: usize,
    combinations: usize,
    flattener: Arc<Flattener>,
    evaluator: Arc<dyn Evaluator>,
    incumbent: Arc<AtomicU64>,
    cancelled: Arc<AtomicBool>,
    state: JobState,
    shards: Vec<ShardSlot>,
    shards_done: usize,
    /// Per-lease staged reports, discarded on expiry/abandon/cancel.
    staged: HashMap<LeaseId, ShardReport>,
    /// Aggregate of completed shards only; exact by construction.
    committed: ShardReport,
    /// Best across committed *and* staged, for `Improved` events.
    best_seen: Option<BestVariant>,
    subscribers: Vec<mpsc::Sender<JobEvent>>,
}

impl Job {
    fn status(&self, id: JobId, in_flight: usize) -> JobStatus {
        let mut report = self.committed.clone();
        for staged in self.staged.values() {
            report.merge(staged, self.top_k);
        }
        JobStatus {
            job: id,
            name: self.name.clone(),
            state: self.state,
            combinations: self.combinations,
            shard_count: self.shard_count,
            shards_done: self.shards_done,
            shards_in_flight: in_flight,
            report,
        }
    }

    fn emit(&mut self, event: JobEvent) {
        self.subscribers
            .retain(|subscriber| subscriber.send(event.clone()).is_ok());
    }
}

/// The service's job table; see the module docs for the protocol.
pub struct JobRegistry {
    lease_timeout: Duration,
    next_job: u64,
    next_lease: u64,
    jobs: BTreeMap<JobId, Job>,
    /// FIFO of (job, shard) pairs available for leasing. May contain entries
    /// for shards that were since leased/cancelled; `lease` skips those.
    queue: VecDeque<(JobId, usize)>,
    /// Live leases: lease → (job, shard).
    leases: HashMap<LeaseId, (JobId, usize)>,
}

impl JobRegistry {
    /// Creates an empty registry whose leases expire after `lease_timeout`
    /// without a batch or completion.
    pub fn new(lease_timeout: Duration) -> Self {
        JobRegistry {
            lease_timeout,
            next_job: 0,
            next_lease: 0,
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            leases: HashMap::new(),
        }
    }

    /// Registers a job over `system`'s variant space.
    ///
    /// Builds the job's [`Flattener`] once (validating the system), clamps the
    /// shard count to the space size and queues every shard. A job over an
    /// empty space (zero combinations) completes immediately.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidSpec`] for a zero shard count, and any system
    /// validation error from the flattener build.
    pub fn submit(
        &mut self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<JobId> {
        if spec.shard_count == 0 {
            return Err(ExploreError::InvalidSpec(
                "shard_count must be at least 1".to_string(),
            ));
        }
        let flattener = Arc::new(Flattener::new(system)?);
        let combinations = flattener.space().count();
        let shard_count = spec.shard_count.min(combinations.max(1));
        let id = JobId(self.next_job);
        self.next_job += 1;

        let empty = combinations == 0;
        let mut job = Job {
            name: spec.name,
            shard_count,
            top_k: spec.top_k.max(1),
            combinations,
            flattener,
            evaluator,
            incumbent: Arc::new(AtomicU64::new(u64::MAX)),
            cancelled: Arc::new(AtomicBool::new(false)),
            state: if empty {
                JobState::Completed
            } else {
                JobState::Running
            },
            shards: Vec::new(),
            shards_done: 0,
            staged: HashMap::new(),
            committed: ShardReport::default(),
            best_seen: None,
            subscribers: Vec::new(),
        };
        if !empty {
            job.shards = (0..shard_count).map(|_| ShardSlot::Pending).collect();
            for shard in 0..shard_count {
                self.queue.push_back((id, shard));
            }
        }
        self.jobs.insert(id, job);
        Ok(id)
    }

    /// Hands out the next pending shard, if any. Stale queue entries (shards
    /// already leased, completed or belonging to terminal jobs) are skipped
    /// and dropped.
    pub fn lease(&mut self, now: Instant) -> Option<Lease> {
        while let Some((job_id, shard)) = self.queue.pop_front() {
            let Some(job) = self.jobs.get_mut(&job_id) else {
                continue;
            };
            if job.state != JobState::Running || !matches!(job.shards[shard], ShardSlot::Pending) {
                continue;
            }
            let lease = LeaseId(self.next_lease);
            self.next_lease += 1;
            let deadline = now + self.lease_timeout;
            job.shards[shard] = ShardSlot::Leased { deadline };
            self.leases.insert(lease, (job_id, shard));
            return Some(Lease {
                job: job_id,
                lease,
                shard,
                shard_count: job.shard_count,
                top_k: job.top_k,
                flattener: Arc::clone(&job.flattener),
                evaluator: Arc::clone(&job.evaluator),
                incumbent: Arc::clone(&job.incumbent),
                cancelled: Arc::clone(&job.cancelled),
                deadline,
                renew_interval: self.lease_timeout / 2,
            });
        }
        None
    }

    fn resolve_lease(&mut self, lease: LeaseId) -> Result<(JobId, usize)> {
        self.leases
            .get(&lease)
            .copied()
            .ok_or(ExploreError::StaleLease(lease))
    }

    /// Merges a batch delta into the lease's staged report and **renews the
    /// lease deadline** — a batch is proof of liveness, so a slow shard stays
    /// owned as long as it keeps reporting.
    ///
    /// # Errors
    ///
    /// [`ExploreError::StaleLease`] if the lease expired, was abandoned or its
    /// job was cancelled; the caller must stop working on the shard.
    pub fn report_batch(&mut self, lease: LeaseId, delta: ShardReport, now: Instant) -> Result<()> {
        let (job_id, shard) = self.resolve_lease(lease)?;
        let deadline = now + self.lease_timeout;
        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        if let ShardSlot::Leased { deadline: slot, .. } = &mut job.shards[shard] {
            *slot = deadline;
        }
        let top_k = job.top_k;
        let staged = job.staged.entry(lease).or_default();
        staged.merge(&delta, top_k);
        if let Some(best) = delta.best() {
            let improved = job
                .best_seen
                .as_ref()
                .is_none_or(|seen| best.key() < seen.key());
            if improved {
                job.best_seen = Some(best.clone());
                let best = best.clone();
                job.emit(JobEvent::Improved { best });
            }
        }
        Ok(())
    }

    /// Completes the shard under `lease`: merges the final `delta`, commits
    /// the staged report into the job aggregate and, when it was the last
    /// shard, finishes the job.
    ///
    /// Returns `true` when the job reached its terminal state with this call.
    ///
    /// # Errors
    ///
    /// [`ExploreError::StaleLease`] as for [`report_batch`](Self::report_batch).
    pub fn complete_shard(
        &mut self,
        lease: LeaseId,
        delta: ShardReport,
        now: Instant,
    ) -> Result<bool> {
        self.report_batch(lease, delta, now)?;
        let (job_id, shard) = self.resolve_lease(lease)?;
        self.leases.remove(&lease);
        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        let staged = job.staged.remove(&lease).unwrap_or_default();
        let top_k = job.top_k;
        job.committed.merge(&staged, top_k);
        job.shards[shard] = ShardSlot::Done;
        job.shards_done += 1;
        let done = job.shards_done;
        let total = job.shard_count;
        job.emit(JobEvent::ShardCompleted {
            shard,
            shards_done: done,
            shard_count: total,
        });
        if done == total {
            job.state = JobState::Completed;
            let status = job.status(job_id, 0);
            job.emit(JobEvent::Finished { status });
            return Ok(true);
        }
        Ok(false)
    }

    /// Voluntarily returns a lease (worker shutting down): staged work is
    /// discarded and the shard re-queued. A stale lease is a no-op.
    pub fn abandon(&mut self, lease: LeaseId) {
        let Some((job_id, shard)) = self.leases.remove(&lease) else {
            return;
        };
        let job = self.jobs.get_mut(&job_id).expect("lease resolves to job");
        job.staged.remove(&lease);
        if job.state == JobState::Running {
            job.shards[shard] = ShardSlot::Pending;
            self.queue.push_back((job_id, shard));
        }
    }

    /// Reclaims every lease whose deadline passed: staged partials are
    /// dropped and the shards re-queued. Returns how many were reclaimed.
    pub fn expire(&mut self, now: Instant) -> usize {
        let expired: Vec<LeaseId> = self
            .leases
            .iter()
            .filter(|(_, (job_id, shard))| {
                self.jobs.get(job_id).is_some_and(|job| {
                    matches!(
                        job.shards[*shard],
                        ShardSlot::Leased { deadline, .. } if deadline <= now
                    )
                })
            })
            .map(|(lease, _)| *lease)
            .collect();
        for lease in &expired {
            self.abandon(*lease);
        }
        expired.len()
    }

    /// Cancels a running job: pending shards are dropped, live leases
    /// invalidated (their future batches get [`ExploreError::StaleLease`]) and
    /// the shared cancel flag raised so draining workers stop early. Terminal
    /// jobs are left as they are — cancellation is idempotent. Returns the
    /// resulting snapshot.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id.
    pub fn cancel(&mut self, job_id: JobId) -> Result<JobStatus> {
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        if job.state == JobState::Running {
            job.state = JobState::Cancelled;
            job.cancelled.store(true, Ordering::Relaxed);
            job.staged.clear();
            let stale: Vec<LeaseId> = self
                .leases
                .iter()
                .filter(|(_, (owner, _))| *owner == job_id)
                .map(|(lease, _)| *lease)
                .collect();
            for lease in stale {
                self.leases.remove(&lease);
            }
            let status = self
                .jobs
                .get(&job_id)
                .expect("job still present")
                .status(job_id, 0);
            let job = self.jobs.get_mut(&job_id).expect("job still present");
            job.emit(JobEvent::Finished {
                status: status.clone(),
            });
            return Ok(status);
        }
        self.poll(job_id)
    }

    /// A point-in-time snapshot of the job.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id.
    pub fn poll(&self, job_id: JobId) -> Result<JobStatus> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        let in_flight = self
            .leases
            .values()
            .filter(|(owner, _)| *owner == job_id)
            .count();
        Ok(job.status(job_id, in_flight))
    }

    /// Subscribes to the job's event stream. Events already in the past are
    /// not replayed; a terminal job yields an immediate `Finished` event.
    ///
    /// # Errors
    ///
    /// [`ExploreError::UnknownJob`] for an unknown id.
    pub fn subscribe(&mut self, job_id: JobId) -> Result<mpsc::Receiver<JobEvent>> {
        let in_flight = self
            .leases
            .values()
            .filter(|(owner, _)| *owner == job_id)
            .count();
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(ExploreError::UnknownJob(job_id))?;
        let (sender, receiver) = mpsc::channel();
        if job.state.is_terminal() {
            let status = job.status(job_id, in_flight);
            let _ = sender.send(JobEvent::Finished { status });
        } else {
            job.subscribers.push(sender);
        }
        Ok(receiver)
    }

    /// Ids of every registered job, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluation, FnEvaluator};
    use spi_workloads::scaling_system;

    fn test_evaluator() -> Arc<dyn Evaluator> {
        Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            Ok(Evaluation {
                cost: (index as u64 * 7) % 31,
                feasible: true,
                detail: String::new(),
            })
        }))
    }

    fn registry_with_job(shards: usize) -> (JobRegistry, JobId) {
        let system = scaling_system(3, 2).unwrap();
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    name: "t".into(),
                    shard_count: shards,
                    top_k: 4,
                },
                test_evaluator(),
            )
            .unwrap();
        (registry, id)
    }

    fn report_with(index: usize, cost: u64) -> ShardReport {
        let mut report = ShardReport {
            evaluated: 1,
            feasible: 1,
            ..ShardReport::default()
        };
        report.record(
            BestVariant {
                index,
                cost,
                choice: spi_variants::VariantChoice::new(),
                detail: String::new(),
            },
            4,
        );
        report
    }

    #[test]
    fn lease_complete_drains_every_shard_once() {
        let (mut registry, id) = registry_with_job(4);
        let now = Instant::now();
        let mut seen = Vec::new();
        while let Some(lease) = registry.lease(now) {
            seen.push(lease.shard);
            let finished = registry
                .complete_shard(lease.lease, report_with(lease.shard, 10), now)
                .unwrap();
            assert_eq!(finished, seen.len() == 4);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 4);
    }

    #[test]
    fn stale_lease_after_expiry_is_rejected_and_shard_requeued() {
        let (mut registry, id) = registry_with_job(1);
        let t0 = Instant::now();
        let zombie = registry.lease(t0).unwrap();
        registry
            .report_batch(zombie.lease, report_with(0, 10), t0)
            .unwrap();
        // Nobody hears from the worker for longer than the timeout.
        let late = t0 + Duration::from_secs(61);
        assert_eq!(registry.expire(late), 1);
        // The zombie's partial work is gone and its lease dead.
        assert_eq!(registry.poll(id).unwrap().report.evaluated, 0);
        assert!(matches!(
            registry.report_batch(zombie.lease, report_with(1, 5), late),
            Err(ExploreError::StaleLease(_))
        ));
        assert!(matches!(
            registry.complete_shard(zombie.lease, report_with(1, 5), late),
            Err(ExploreError::StaleLease(_))
        ));
        // A fresh lease drains the shard; the final count is exact.
        let fresh = registry.lease(late).unwrap();
        assert_eq!(fresh.shard, zombie.shard);
        registry
            .complete_shard(fresh.lease, report_with(0, 10), late)
            .unwrap();
        let status = registry.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 1);
    }

    #[test]
    fn batches_renew_the_lease_deadline() {
        let (mut registry, _id) = registry_with_job(1);
        let t0 = Instant::now();
        let lease = registry.lease(t0).unwrap();
        // Keep batching just before every deadline: the lease must survive.
        let mut now = t0;
        for _ in 0..4 {
            now += Duration::from_secs(29);
            assert_eq!(registry.expire(now), 0);
            registry
                .report_batch(lease.lease, report_with(0, 10), now)
                .unwrap();
        }
        assert!(registry
            .complete_shard(lease.lease, ShardReport::default(), now)
            .unwrap());
    }

    #[test]
    fn cancel_invalidates_leases_and_keeps_partial_results() {
        let (mut registry, id) = registry_with_job(4);
        let now = Instant::now();
        let first = registry.lease(now).unwrap();
        registry
            .complete_shard(first.lease, report_with(0, 10), now)
            .unwrap();
        let in_flight = registry.lease(now).unwrap();
        let status = registry.cancel(id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert_eq!(status.report.evaluated, 1, "committed shard survives");
        assert!(in_flight.cancelled.load(Ordering::Relaxed));
        assert!(matches!(
            registry.complete_shard(in_flight.lease, report_with(9, 1), now),
            Err(ExploreError::StaleLease(_))
        ));
        // No further leases; cancel is idempotent.
        assert!(registry.lease(now).is_none());
        assert_eq!(registry.cancel(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn events_report_improvements_and_completion() {
        let (mut registry, id) = registry_with_job(2);
        let events = registry.subscribe(id).unwrap();
        let now = Instant::now();
        let a = registry.lease(now).unwrap();
        let b = registry.lease(now).unwrap();
        registry
            .complete_shard(a.lease, report_with(3, 20), now)
            .unwrap();
        registry
            .complete_shard(b.lease, report_with(5, 10), now)
            .unwrap();
        let collected: Vec<JobEvent> = events.try_iter().collect();
        assert!(matches!(
            collected[0],
            JobEvent::Improved { ref best } if best.cost == 20
        ));
        assert!(collected
            .iter()
            .any(|e| matches!(e, JobEvent::Improved { best } if best.cost == 10)));
        assert!(matches!(
            collected.last().unwrap(),
            JobEvent::Finished { status } if status.state == JobState::Completed
        ));
        // Subscribing to a terminal job yields an immediate Finished.
        let late = registry.subscribe(id).unwrap();
        assert!(matches!(
            late.try_iter().next(),
            Some(JobEvent::Finished { .. })
        ));
    }

    #[test]
    fn shard_count_is_clamped_and_empty_spaces_complete_immediately() {
        let system = scaling_system(2, 2).unwrap(); // 4 combinations
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        let id = registry
            .submit(
                &system,
                JobSpec {
                    shard_count: 64,
                    ..JobSpec::default()
                },
                test_evaluator(),
            )
            .unwrap();
        assert_eq!(registry.poll(id).unwrap().shard_count, 4);

        let empty = VariantSystem::new(spi_model::SpiGraph::new("empty"));
        let done = registry
            .submit(&empty, JobSpec::default(), test_evaluator())
            .unwrap();
        let status = registry.poll(done).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.combinations, 0);
        assert!(registry.lease(Instant::now()).map(|l| l.job) != Some(done));
    }

    #[test]
    fn invalid_specs_and_unknown_jobs_are_rejected() {
        let system = scaling_system(2, 2).unwrap();
        let mut registry = JobRegistry::new(Duration::from_secs(30));
        assert!(matches!(
            registry.submit(
                &system,
                JobSpec {
                    shard_count: 0,
                    ..JobSpec::default()
                },
                test_evaluator(),
            ),
            Err(ExploreError::InvalidSpec(_))
        ));
        let ghost = JobId::from_raw(99);
        assert!(matches!(
            registry.poll(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
        assert!(matches!(
            registry.cancel(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
        assert!(matches!(
            registry.subscribe(ghost),
            Err(ExploreError::UnknownJob(_))
        ));
    }
}
