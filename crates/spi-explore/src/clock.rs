//! The service's time source, as a seam.
//!
//! [`JobRegistry`](crate::JobRegistry) is already `Instant`-injected — every
//! deadline-bearing entry point (`lease`, `expire`, `complete_shard`, the
//! watchdog's `observe`) takes `now` as an argument. This module lifts the
//! same injection one layer up: [`ExplorationService`](crate::ExplorationService)
//! worker loops, watchdog sweeps and hedging deadlines read time through a
//! [`Clock`] carried in the [`ServiceConfig`](crate::ServiceConfig), so a
//! deterministic harness (`spi-chaos`) can substitute a [`SimClock`] and jump
//! simulated time — expiring leases, firing hedges and starving tenants
//! without ever sleeping.
//!
//! Production code pays one virtual call per read; the default
//! [`SystemClock`] simply forwards to [`Instant::now`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source.
///
/// Implementations must be monotone (never step backwards) and cheap: worker
/// loops read the clock once per lease/flush cycle.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The production clock: [`Instant::now`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A simulated clock: a fixed base instant plus an atomically-advanced
/// offset. Time only moves when [`advance`](SimClock::advance) is called, so
/// a single-threaded simulation controls exactly when leases expire and
/// hedges fire.
///
/// Clone-shares the offset: all clones (and the service holding one behind
/// `Arc<dyn Clock>`) observe every advance.
#[derive(Debug, Clone)]
pub struct SimClock {
    base: Instant,
    offset_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A simulated clock starting at the real "now" with zero offset.
    pub fn new() -> Self {
        SimClock {
            base: Instant::now(),
            offset_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Advances simulated time by `delta`. Saturates at `u64::MAX`
    /// nanoseconds of total offset (~584 years of simulated run).
    pub fn advance(&self, delta: Duration) {
        let ns = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        self.offset_ns
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                Some(cur.saturating_add(ns))
            })
            .ok();
    }

    /// Total simulated time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Instant {
        self.base + self.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_only_moves_on_advance() {
        let clock = SimClock::new();
        let start = clock.now();
        assert_eq!(clock.now(), start);
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), start + Duration::from_secs(5));
        assert_eq!(clock.elapsed(), Duration::from_secs(5));
    }

    #[test]
    fn sim_clock_clones_share_the_offset() {
        let clock = SimClock::new();
        let shared: Arc<dyn Clock> = Arc::new(clock.clone());
        let before = shared.now();
        clock.advance(Duration::from_millis(250));
        assert_eq!(shared.now(), before + Duration::from_millis(250));
    }
}
