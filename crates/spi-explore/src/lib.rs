//! # spi-explore
//!
//! The sharded variant-space **exploration service**: the layer that turns the
//! fast library core of this reproduction (lazy enumeration, `Flattener`,
//! compiled partition search) into a serving system.
//!
//! The paper's variant representation exists so a synthesis flow can *explore*
//! the combinational space of function variants. `spi-variants` makes single
//! points of that space cheap (`Flattener::flatten_at`), `spi-synth` makes
//! evaluating one point fast (the compiled searches); this crate makes the
//! *space* drainable: a long-running [`ExplorationService`] owns a registry of
//! jobs, leases **strided shards** to a worker pool under an expiring
//! [job/lease protocol](crate::registry), evaluates every flattened variant
//! through a pluggable [`Evaluator`], aggregates batched, incrementally-merged
//! [`ShardReport`]s, and shares a best-cost **incumbent** that workers use to
//! prune across shards without ever changing the exact `(cost, index)`
//! optimum.
//!
//! Two frontends expose it:
//!
//! * **in-process** — [`ExplorationService::submit`] / [`poll`] / [`cancel`] /
//!   [`wait`] plus an event stream over `std::sync::mpsc` channels
//!   ([`ExplorationService::subscribe`]);
//! * **cross-process** — the `spi-explored` binary speaking newline-delimited
//!   JSON over stdin/stdout ([`wire::serve`]), with every symbol resolved to
//!   its string on the way out and re-interned on the way in.
//!
//! ```rust
//! use std::sync::Arc;
//! use spi_explore::{ExplorationService, JobSpec, PartitionEvaluator, ServiceConfig};
//!
//! # fn main() -> Result<(), spi_explore::ExploreError> {
//! let service = ExplorationService::start(ServiceConfig::with_workers(4));
//! let system = spi_workloads::scaling_system(6, 2).expect("system builds"); // 64 variants
//! let job = service.submit(
//!     &system,
//!     JobSpec { name: "demo".into(), shard_count: 8, top_k: 4, ..JobSpec::default() },
//!     Arc::new(PartitionEvaluator::default()),
//! )?;
//! let status = service.wait(job)?;
//! assert_eq!(status.report.accounted(), 64);
//! println!("optimum: {:?}", status.best());
//! # Ok(())
//! # }
//! ```
//!
//! [`poll`]: ExplorationService::poll
//! [`cancel`]: ExplorationService::cancel
//! [`wait`]: ExplorationService::wait

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod durability;
pub mod error;
pub mod evaluator;
pub mod health;
pub mod registry;
pub mod report;
pub mod service;
pub mod wire;
pub mod worker;

pub use clock::{Clock, SimClock, SystemClock};
pub use durability::{DurabilitySink, MemorySink, MemoryStore, WalSink};
pub use error::ExploreError;
pub use evaluator::{Evaluation, Evaluator, FnEvaluator, PartitionEvaluator, TaskParamsSpec};
pub use health::{
    HealthFinding, HealthObservation, HealthReport, LeaseHealth, TenantHealth, Watchdog,
};
pub use registry::{
    JobEvent, JobId, JobRegistry, JobSpec, JobState, JobStatus, LatencyQuantiles, Lease, LeaseId,
    RegistryConfig, RestoreStats,
};
pub use report::{BestVariant, ShardReport};
pub use service::{ExplorationService, ServiceConfig};
pub use spi_model::introspect::{GraphEdge, GraphNode, GraphSnapshot};
pub use spi_store::sched::HedgeConfig;
pub use spi_store::span::{
    CriticalPath, PhaseId, Profile, Span, SpanDrain, SpanIds, SpanRecorder, SpanSink,
};
pub use spi_store::trace::{
    ReplayReport, TraceDrain, TraceEvent, TraceReplay, TraceSubscription, TracedEvent,
};
pub use spi_store::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use wire::{
    handle_request, rebuild_from_recipe, run_session, serve, status_from_json, WireStatus,
};
pub use worker::{
    drain_lease, drain_lease_instrumented, drain_lease_spanned, DrainOutcome, FlushResponse,
};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ExploreError>;
