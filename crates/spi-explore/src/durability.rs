//! The registry's hook into durable storage.
//!
//! [`JobRegistry`](crate::JobRegistry) stays a pure state machine: it never
//! opens files itself. Instead it serializes its own transition records
//! (submit / shard-commit / cancel) as [`JsonValue`] lines and hands them to
//! a [`DurabilitySink`] **before** applying the transition in memory — the
//! write-ahead discipline that makes crash recovery exact: a transition the
//! sink never acknowledged never happened, and a transition the sink
//! acknowledged is replayed even if the process died a cycle later.
//!
//! The production sink is [`WalSink`], a thin adapter over
//! [`spi_store::Wal`]; tests substitute in-memory sinks to script failures
//! and inspect the record stream.

use spi_model::json::JsonValue;
use spi_store::Wal;

/// Where the registry writes its transition records and snapshots.
///
/// Errors are plain strings (they surface as
/// [`ExploreError::Store`](crate::ExploreError)): the registry treats any
/// sink failure as "the transition did not happen" and reports it to the
/// caller, who may retry or abandon.
pub trait DurabilitySink: Send {
    /// Durably appends one transition record. Must not return `Ok` unless
    /// the record will survive a process crash.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failure.
    fn append(&mut self, record: &JsonValue) -> Result<(), String>;

    /// Replaces the record history with a compacted snapshot and forces
    /// everything to stable storage. Returns the bytes of record history the
    /// compaction reclaimed (0 for sinks without a meaningful size), which
    /// the registry records in its decision trace.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failure.
    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String>;

    /// Bytes of record history accumulated since the last compaction. The
    /// registry compares this against its `compact_log_bytes` budget to
    /// decide when to compact mid-flight; sinks without a meaningful size
    /// (in-memory tests) report 0 and are never auto-compacted.
    fn log_bytes(&self) -> u64 {
        0
    }
}

/// [`DurabilitySink`] over a [`spi_store::Wal`].
pub struct WalSink(pub Wal);

impl DurabilitySink for WalSink {
    fn append(&mut self, record: &JsonValue) -> Result<(), String> {
        self.0
            .append(record)
            .map(|_seq| ())
            .map_err(|e| e.to_string())
    }

    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String> {
        self.0.compact(snapshot).map_err(|e| e.to_string())
    }

    fn log_bytes(&self) -> u64 {
        self.0.log_bytes()
    }
}

/// The durable state an in-memory sink accumulates: a snapshot plus the
/// record tail appended since — exactly what [`JobRegistry::restore`]
/// consumes. Shared behind `Arc<Mutex<…>>` so it survives the registry (and
/// sink) it was attached to, the way a WAL directory survives a process: a
/// simulated crash drops the registry and restores a fresh one from the
/// store's contents.
///
/// [`JobRegistry::restore`]: crate::JobRegistry::restore
#[derive(Debug, Default, Clone)]
pub struct MemoryStore {
    /// The latest compacted snapshot, if any compaction ran.
    pub snapshot: Option<JsonValue>,
    /// Transition records appended since the latest compaction.
    pub records: Vec<JsonValue>,
    /// Serialized bytes of `records` — what [`DurabilitySink::log_bytes`]
    /// reports, so size-triggered compaction is testable in memory.
    pub log_bytes: u64,
}

/// In-memory [`DurabilitySink`] over a shared [`MemoryStore`]; optionally
/// fails every operation (`fail: true`), modeling a sink outage.
///
/// Production uses [`WalSink`]; tests and the `spi-chaos` simulation use
/// this to script failures and inspect (or corrupt) the record stream.
pub struct MemorySink {
    /// The store appends land in; shared so inspection outlives the sink.
    pub store: std::sync::Arc<std::sync::Mutex<MemoryStore>>,
    /// When `true`, every append and compact returns an error without
    /// touching the store.
    pub fail: bool,
}

impl MemorySink {
    /// A working sink over `store`.
    pub fn new(store: std::sync::Arc<std::sync::Mutex<MemoryStore>>) -> Self {
        MemorySink { store, fail: false }
    }

    /// A sink that fails every operation, leaving `store` untouched.
    pub fn failing(store: std::sync::Arc<std::sync::Mutex<MemoryStore>>) -> Self {
        MemorySink { store, fail: true }
    }
}

impl DurabilitySink for MemorySink {
    fn append(&mut self, record: &JsonValue) -> Result<(), String> {
        if self.fail {
            return Err("sink scripted to fail".to_string());
        }
        let mut store = self.store.lock().expect("store lock");
        store.log_bytes += record.to_line().len() as u64 + 1;
        store.records.push(record.clone());
        Ok(())
    }

    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String> {
        if self.fail {
            return Err("sink scripted to fail".to_string());
        }
        let mut store = self.store.lock().expect("store lock");
        let reclaimed = store.log_bytes;
        store.snapshot = Some(snapshot.clone());
        store.records.clear();
        store.log_bytes = 0;
        Ok(reclaimed)
    }

    fn log_bytes(&self) -> u64 {
        self.store.lock().expect("store lock").log_bytes
    }
}
