//! The registry's hook into durable storage.
//!
//! [`JobRegistry`](crate::JobRegistry) stays a pure state machine: it never
//! opens files itself. Instead it serializes its own transition records
//! (submit / shard-commit / cancel) as [`JsonValue`] lines and hands them to
//! a [`DurabilitySink`] **before** applying the transition in memory — the
//! write-ahead discipline that makes crash recovery exact: a transition the
//! sink never acknowledged never happened, and a transition the sink
//! acknowledged is replayed even if the process died a cycle later.
//!
//! The production sink is [`WalSink`], a thin adapter over
//! [`spi_store::Wal`]; tests substitute in-memory sinks to script failures
//! and inspect the record stream.

use spi_model::json::JsonValue;
use spi_store::Wal;

/// Where the registry writes its transition records and snapshots.
///
/// Errors are plain strings (they surface as
/// [`ExploreError::Store`](crate::ExploreError)): the registry treats any
/// sink failure as "the transition did not happen" and reports it to the
/// caller, who may retry or abandon.
pub trait DurabilitySink: Send {
    /// Durably appends one transition record. Must not return `Ok` unless
    /// the record will survive a process crash.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failure.
    fn append(&mut self, record: &JsonValue) -> Result<(), String>;

    /// Replaces the record history with a compacted snapshot and forces
    /// everything to stable storage. Returns the bytes of record history the
    /// compaction reclaimed (0 for sinks without a meaningful size), which
    /// the registry records in its decision trace.
    ///
    /// # Errors
    ///
    /// A human-readable description of the failure.
    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String>;

    /// Bytes of record history accumulated since the last compaction. The
    /// registry compares this against its `compact_log_bytes` budget to
    /// decide when to compact mid-flight; sinks without a meaningful size
    /// (in-memory tests) report 0 and are never auto-compacted.
    fn log_bytes(&self) -> u64 {
        0
    }
}

/// [`DurabilitySink`] over a [`spi_store::Wal`].
pub struct WalSink(pub Wal);

impl DurabilitySink for WalSink {
    fn append(&mut self, record: &JsonValue) -> Result<(), String> {
        self.0
            .append(record)
            .map(|_seq| ())
            .map_err(|e| e.to_string())
    }

    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String> {
        self.0.compact(snapshot).map_err(|e| e.to_string())
    }

    fn log_bytes(&self) -> u64 {
        self.0.log_bytes()
    }
}

#[cfg(test)]
pub(crate) mod test_sinks {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Records appends in memory; optionally fails every append.
    pub struct MemorySink {
        pub records: Arc<Mutex<Vec<JsonValue>>>,
        pub fail: bool,
    }

    impl DurabilitySink for MemorySink {
        fn append(&mut self, record: &JsonValue) -> Result<(), String> {
            if self.fail {
                return Err("sink scripted to fail".to_string());
            }
            self.records.lock().unwrap().push(record.clone());
            Ok(())
        }

        fn compact(&mut self, _snapshot: &JsonValue) -> Result<u64, String> {
            if self.fail {
                return Err("sink scripted to fail".to_string());
            }
            Ok(0)
        }
    }
}
