//! The stall watchdog behind the `health` op.
//!
//! The registry is a pure state machine — it cannot tell a slow shard from a
//! wedged one, and it never flags its own callers. The [`Watchdog`] closes
//! that loop from the outside: it takes periodic [`HealthObservation`]
//! snapshots (assembled under the registry lock by
//! [`JobRegistry::observe_health`](crate::JobRegistry::observe_health)) and
//! compares *consecutive* observations to find the three ways the service
//! wedges in practice:
//!
//! * **stuck leases** — a holder past its deadline (the expiry reaper should
//!   have reclaimed it) or in flight for more than
//!   [`Watchdog::stall_multiplier`] × the job's observed p95 shard duration;
//! * **starved tenants** — a tenant with backlog whose cumulative WFQ
//!   service count has not moved across a full observation window;
//! * **a stalled WAL** — a log over its compaction budget across two
//!   consecutive sweeps with zero compaction progress in between.
//!
//! Each [`HealthFinding`] names the [waitgraph](crate::JobRegistry::waitgraph)
//! node ids it implicates (`lease:7`, `shard:3/1`, `tenant:batch`,
//! `store:wal`, …), so a `health` report can be joined directly against a
//! `graph` snapshot taken in the same breath.
//!
//! The watchdog holds no lock and owns no clock: callers pass `Instant`s in,
//! which keeps every check deterministic under test — the unit tests below
//! drive sweeps with hand-built observations and synthetic time.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use spi_model::json::{JsonValue, ToJson};

/// One live lease holder as the watchdog sees it.
#[derive(Debug, Clone)]
pub struct LeaseHealth {
    /// Raw lease id (`lease:<id>` in the waitgraph).
    pub lease: u64,
    /// Raw id of the owning job.
    pub job: u64,
    /// Shard index within the job.
    pub shard: usize,
    /// Worker name the lease was granted to.
    pub worker: String,
    /// How long the holder has been draining the shard.
    pub elapsed: Duration,
    /// The deadline has passed without renewal — the expiry reaper is late.
    pub overdue: bool,
    /// The owning job's completed-shard p95, once any shard has finished.
    pub p95_ns: Option<u64>,
}

/// One backlogged tenant as the watchdog sees it.
#[derive(Debug, Clone)]
pub struct TenantHealth {
    /// Tenant name (`tenant:<name>` in the waitgraph).
    pub tenant: String,
    /// Shards waiting in the tenant's WFQ queue.
    pub backlog: u64,
    /// Cumulative shards dispatched for the tenant (the WFQ service count).
    pub service: u64,
}

/// A point-in-time health snapshot of the registry; pure data, assembled
/// under the registry lock and judged outside it.
#[derive(Debug, Clone)]
pub struct HealthObservation {
    /// Every live lease holder.
    pub leases: Vec<LeaseHealth>,
    /// Every tenant with work queued.
    pub tenants: Vec<TenantHealth>,
    /// Current WAL size (0 without a sink).
    pub log_bytes: u64,
    /// The auto-compaction budget, when one is configured.
    pub compact_budget: Option<u64>,
    /// Cumulative compactions (auto and explicit).
    pub compactions: u64,
}

/// One diagnosed stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthFinding {
    /// `stuck_lease`, `starved_tenant` or `wal_stalled`.
    pub kind: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
    /// Waitgraph node ids this finding implicates.
    pub nodes: Vec<String>,
}

impl ToJson for HealthFinding {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("kind", JsonValue::string(self.kind)),
            ("message", self.message.to_json()),
            ("nodes", self.nodes.to_json()),
        ])
    }
}

/// What a sweep concluded: `status` is `"ok"` with no findings, `"stalled"`
/// otherwise.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Sweeps performed so far, including this one.
    pub sweeps: u64,
    /// Every stall diagnosed by this sweep.
    pub findings: Vec<HealthFinding>,
}

impl HealthReport {
    /// `"ok"` or `"stalled"`.
    pub fn status(&self) -> &'static str {
        if self.findings.is_empty() {
            "ok"
        } else {
            "stalled"
        }
    }
}

impl ToJson for HealthReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("status", JsonValue::string(self.status())),
            ("sweeps", self.sweeps.to_json()),
            ("findings", self.findings.to_json()),
        ])
    }
}

/// Remembered slice of the previous sweep, for progress comparisons.
#[derive(Debug, Clone)]
struct PriorSweep {
    at: Instant,
    tenant_service: BTreeMap<String, u64>,
    log_bytes: u64,
    compactions: u64,
}

/// The stall detector; see the module docs for the three checks.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// A lease in flight longer than `stall_multiplier × p95` of its job's
    /// completed shards counts as stuck.
    pub stall_multiplier: u32,
    /// Starvation and WAL checks need two observations at least this far
    /// apart — a single frame proves nothing about progress.
    pub min_window: Duration,
    prior: Option<PriorSweep>,
    sweeps: u64,
}

impl Watchdog {
    /// A watchdog with the default thresholds (stall multiplier 4, 100 ms
    /// minimum progress window).
    pub fn new() -> Watchdog {
        Watchdog {
            stall_multiplier: 4,
            min_window: Duration::from_millis(100),
            prior: None,
            sweeps: 0,
        }
    }

    /// Sweeps performed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Judges one observation against the previous one and remembers it for
    /// the next sweep. `now` must be the instant the observation was taken.
    pub fn sweep(&mut self, observation: &HealthObservation, now: Instant) -> HealthReport {
        self.sweeps += 1;
        let mut findings = Vec::new();

        for lease in &observation.leases {
            let stalled_vs_peers = lease.p95_ns.is_some_and(|p95| {
                let threshold = u128::from(p95) * u128::from(self.stall_multiplier.max(1));
                lease.elapsed.as_nanos() > threshold
            });
            if !lease.overdue && !stalled_vs_peers {
                continue;
            }
            let age_ms = lease.elapsed.as_millis();
            let reason = if lease.overdue {
                "deadline passed without renewal or reclaim".to_string()
            } else {
                format!(
                    "in flight {age_ms} ms, over {}x the job's p95 shard duration",
                    self.stall_multiplier
                )
            };
            findings.push(HealthFinding {
                kind: "stuck_lease",
                message: format!(
                    "lease {} on shard {}/{} held by {}: {reason}",
                    lease.lease, lease.job, lease.shard, lease.worker
                ),
                nodes: vec![
                    format!("lease:{}", lease.lease),
                    format!("shard:{}/{}", lease.job, lease.shard),
                    format!("worker:{}", lease.worker),
                ],
            });
        }

        // Progress checks compare against the previous sweep, if it is old
        // enough to be meaningful.
        let window = self
            .prior
            .as_ref()
            .filter(|prior| now.saturating_duration_since(prior.at) >= self.min_window);
        if let Some(prior) = window {
            for tenant in &observation.tenants {
                let unchanged = prior
                    .tenant_service
                    .get(&tenant.tenant)
                    .is_some_and(|&before| before == tenant.service);
                if tenant.backlog > 0 && unchanged {
                    findings.push(HealthFinding {
                        kind: "starved_tenant",
                        message: format!(
                            "tenant {} has {} queued shards but received no service \
                             since the previous sweep",
                            tenant.tenant, tenant.backlog
                        ),
                        nodes: vec![format!("tenant:{}", tenant.tenant)],
                    });
                }
            }
            if let Some(budget) = observation.compact_budget {
                let oversized_twice = observation.log_bytes > budget && prior.log_bytes > budget;
                if oversized_twice && observation.compactions == prior.compactions {
                    findings.push(HealthFinding {
                        kind: "wal_stalled",
                        message: format!(
                            "WAL at {} bytes, over its {budget}-byte compaction budget \
                             with no compaction progress",
                            observation.log_bytes
                        ),
                        nodes: vec!["store:wal".to_string()],
                    });
                }
            }
        }

        let replace = match &self.prior {
            // Keep the progress baseline stable across sweeps faster than the
            // window, or back-to-back sweeps could never observe starvation.
            Some(prior) => now.saturating_duration_since(prior.at) >= self.min_window,
            None => true,
        };
        if replace {
            self.prior = Some(PriorSweep {
                at: now,
                tenant_service: observation
                    .tenants
                    .iter()
                    .map(|tenant| (tenant.tenant.clone(), tenant.service))
                    .collect(),
                log_bytes: observation.log_bytes,
                compactions: observation.compactions,
            });
        }

        HealthReport {
            sweeps: self.sweeps,
            findings,
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation() -> HealthObservation {
        HealthObservation {
            leases: Vec::new(),
            tenants: Vec::new(),
            log_bytes: 0,
            compact_budget: None,
            compactions: 0,
        }
    }

    #[test]
    fn healthy_observation_yields_no_findings() {
        let mut watchdog = Watchdog::new();
        let now = Instant::now();
        let mut healthy = observation();
        healthy.leases.push(LeaseHealth {
            lease: 1,
            job: 0,
            shard: 0,
            worker: "w0".into(),
            elapsed: Duration::from_millis(5),
            overdue: false,
            p95_ns: Some(10_000_000),
        });
        let report = watchdog.sweep(&healthy, now);
        assert_eq!(report.status(), "ok");
        assert_eq!(report.sweeps, 1);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn abandoned_lease_is_flagged_with_waitgraph_nodes() {
        let mut watchdog = Watchdog::new();
        let mut stuck = observation();
        stuck.leases.push(LeaseHealth {
            lease: 7,
            job: 3,
            shard: 1,
            worker: "w2".into(),
            elapsed: Duration::from_secs(40),
            overdue: true,
            p95_ns: None,
        });
        let report = watchdog.sweep(&stuck, Instant::now());
        assert_eq!(report.status(), "stalled");
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        assert_eq!(finding.kind, "stuck_lease");
        assert_eq!(
            finding.nodes,
            vec![
                "lease:7".to_string(),
                "shard:3/1".to_string(),
                "worker:w2".to_string()
            ]
        );
    }

    #[test]
    fn straggler_past_the_p95_multiple_is_flagged_without_being_overdue() {
        let mut watchdog = Watchdog::new();
        let mut slow = observation();
        slow.leases.push(LeaseHealth {
            lease: 2,
            job: 0,
            shard: 4,
            worker: "w1".into(),
            elapsed: Duration::from_millis(500),
            overdue: false,
            p95_ns: Some(1_000_000), // 1 ms p95; 500 ms elapsed >> 4 ms threshold.
        });
        let report = watchdog.sweep(&slow, Instant::now());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].kind, "stuck_lease");
    }

    #[test]
    fn starved_tenant_needs_two_sweeps_a_window_apart() {
        let mut watchdog = Watchdog::new();
        let now = Instant::now();
        let mut starved = observation();
        starved.tenants.push(TenantHealth {
            tenant: "batch".into(),
            backlog: 9,
            service: 3,
        });

        // First sweep only records the baseline.
        assert_eq!(watchdog.sweep(&starved, now).status(), "ok");
        // A second sweep inside the window proves nothing.
        let soon = now + Duration::from_millis(1);
        assert_eq!(watchdog.sweep(&starved, soon).status(), "ok");
        // Past the window with identical service: starved.
        let later = now + watchdog.min_window + Duration::from_millis(1);
        let report = watchdog.sweep(&starved, later);
        assert_eq!(report.status(), "stalled");
        assert_eq!(report.findings[0].kind, "starved_tenant");
        assert_eq!(report.findings[0].nodes, vec!["tenant:batch".to_string()]);

        // Any service progress clears it.
        let mut served = starved.clone();
        served.tenants[0].service = 4;
        let even_later = later + watchdog.min_window + Duration::from_millis(1);
        assert_eq!(watchdog.sweep(&served, even_later).status(), "ok");
    }

    #[test]
    fn wal_over_budget_without_compaction_progress_is_flagged() {
        let mut watchdog = Watchdog::new();
        let now = Instant::now();
        let mut bloated = observation();
        bloated.log_bytes = 10_000;
        bloated.compact_budget = Some(1_000);
        bloated.compactions = 2;

        assert_eq!(watchdog.sweep(&bloated, now).status(), "ok");
        let later = now + watchdog.min_window + Duration::from_millis(1);
        let report = watchdog.sweep(&bloated, later);
        assert_eq!(report.status(), "stalled");
        assert_eq!(report.findings[0].kind, "wal_stalled");
        assert_eq!(report.findings[0].nodes, vec!["store:wal".to_string()]);

        // A compaction between sweeps counts as progress even if the log is
        // still over budget (it may simply be refilling).
        let mut compacted = bloated.clone();
        compacted.compactions = 3;
        let even_later = later + watchdog.min_window + Duration::from_millis(1);
        assert_eq!(watchdog.sweep(&compacted, even_later).status(), "ok");
    }
}
