//! The long-running exploration service: registry + worker pool + client API.
//!
//! [`ExplorationService::start`] spawns a pool of OS worker threads that
//! repeatedly lease strided shards from the [`JobRegistry`], drain them
//! ([`crate::worker::drain_lease`]) and feed batched results back. Clients
//! talk to the service in-process through the methods here — submit, poll,
//! cancel, blocking wait, and an event subscription over `std::sync::mpsc`
//! channels (the offline environment has no async runtime; channels plus a
//! blocking `wait` cover the same call patterns) — or across processes via
//! the ndjson frontend in [`crate::wire`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spi_variants::VariantSystem;

use crate::evaluator::Evaluator;
use crate::registry::{JobEvent, JobId, JobRegistry, JobSpec, JobStatus, Lease};
use crate::worker::{drain_lease, DrainOutcome, FlushResponse};
use crate::Result;

/// Tunables of an [`ExplorationService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// How long a lease survives without a batch or completion before its
    /// shard is re-queued.
    pub lease_timeout: Duration,
    /// Variants accounted per flushed batch.
    pub batch_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            lease_timeout: Duration::from_secs(30),
            batch_size: 256,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` threads and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }
}

struct Inner {
    registry: Mutex<JobRegistry>,
    /// Signalled when shards become available (submit, expiry, abandon).
    work_available: Condvar,
    /// Signalled on shard completion / job termination, for [`wait`].
    progress: Condvar,
    shutdown: AtomicBool,
    batch_size: usize,
}

/// A running exploration service; dropping it stops the worker pool (workers
/// abandon in-flight shards, which re-queue for a future service over the
/// same registry state — nothing is double-counted either way).
pub struct ExplorationService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ExplorationService {
    /// Starts the worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            registry: Mutex::new(JobRegistry::new(config.lease_timeout)),
            work_available: Condvar::new(),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_size: config.batch_size.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("spi-explore-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("worker thread spawns")
            })
            .collect();
        ExplorationService { inner, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; returns immediately with its id.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::submit`].
    pub fn submit(
        &self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<JobId> {
        let id = self.registry().submit(system, spec, evaluator)?;
        self.inner.work_available.notify_all();
        Ok(id)
    }

    /// A point-in-time snapshot of the job.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::poll`].
    pub fn poll(&self, job: JobId) -> Result<JobStatus> {
        self.registry().poll(job)
    }

    /// Cancels the job (idempotent) and returns the resulting snapshot.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::cancel`].
    pub fn cancel(&self, job: JobId) -> Result<JobStatus> {
        let status = self.registry().cancel(job)?;
        self.inner.progress.notify_all();
        Ok(status)
    }

    /// Snapshots of every registered job, in submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let registry = self.registry();
        registry
            .job_ids()
            .into_iter()
            .filter_map(|id| registry.poll(id).ok())
            .collect()
    }

    /// Subscribes to the job's event stream (improvements, shard completions,
    /// termination) over an `mpsc` channel.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::subscribe`].
    pub fn subscribe(&self, job: JobId) -> Result<mpsc::Receiver<JobEvent>> {
        self.registry().subscribe(job)
    }

    /// Blocks until the job reaches a terminal state and returns its final,
    /// exact snapshot.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::poll`].
    pub fn wait(&self, job: JobId) -> Result<JobStatus> {
        let mut registry = self.inner.registry.lock().expect("registry lock");
        loop {
            let status = registry.poll(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            let (guard, _) = self
                .inner
                .progress
                .wait_timeout(registry, Duration::from_millis(50))
                .expect("registry lock");
            registry = guard;
        }
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, JobRegistry> {
        self.inner.registry.lock().expect("registry lock")
    }
}

impl Drop for ExplorationService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let lease = {
            let mut registry = inner.registry.lock().expect("registry lock");
            registry.expire(Instant::now());
            match registry.lease(Instant::now()) {
                Some(lease) => Some(lease),
                None => {
                    // Idle-wait; the timeout re-checks lease expiry and
                    // shutdown even if no submit ever signals.
                    let _ = inner
                        .work_available
                        .wait_timeout(registry, Duration::from_millis(20))
                        .expect("registry lock");
                    None
                }
            }
        };
        if let Some(lease) = lease {
            process_lease(inner, &lease);
        }
    }
}

fn process_lease(inner: &Inner, lease: &Lease) {
    let outcome = drain_lease(
        lease,
        inner.batch_size,
        || inner.shutdown.load(Ordering::Relaxed),
        |delta, is_final| {
            let mut registry = inner.registry.lock().expect("registry lock");
            let result = if is_final {
                registry.complete_shard(lease.lease, delta, Instant::now())
            } else {
                registry
                    .report_batch(lease.lease, delta, Instant::now())
                    .map(|()| false)
            };
            drop(registry);
            match result {
                Ok(_) => {
                    if is_final {
                        inner.progress.notify_all();
                    }
                    FlushResponse::Continue
                }
                Err(_) => FlushResponse::Stop,
            }
        },
    );
    if outcome == DrainOutcome::Stopped {
        // Service shutdown or job cancel: hand the shard back (a no-op for
        // cancelled jobs, whose leases are already invalidated).
        let mut registry = inner.registry.lock().expect("registry lock");
        registry.abandon(lease.lease);
        drop(registry);
        inner.work_available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluation, FnEvaluator};
    use crate::registry::JobState;
    use spi_workloads::scaling_system;

    fn index_cost_evaluator() -> Arc<dyn Evaluator> {
        Arc::new(FnEvaluator::new(|index, _c, _g| {
            Ok(Evaluation {
                cost: ((index as u64) * 131) % 251,
                feasible: true,
                detail: format!("v{index}"),
            })
        }))
    }

    #[test]
    fn service_drains_a_job_to_completion() {
        let service = ExplorationService::start(ServiceConfig::with_workers(4));
        let system = scaling_system(6, 2).unwrap(); // 64 variants
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "drain".into(),
                    shard_count: 8,
                    top_k: 4,
                },
                index_cost_evaluator(),
            )
            .unwrap();
        let status = service.wait(job).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 64);
        assert_eq!(status.report.accounted(), 64);
        assert_eq!(status.shards_done, 8);
        // Best is the index minimizing (131·i mod 251, i): i=23 gives cost 1.
        let best = status.best().unwrap();
        let serial_best = (0..64u64).map(|i| ((i * 131) % 251, i)).min().unwrap();
        assert_eq!((best.cost, best.index as u64), serial_best);
        assert_eq!(status.report.top.len(), 4);
    }

    #[test]
    fn wait_and_poll_agree_on_terminal_state() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let system = scaling_system(4, 2).unwrap();
        let job = service
            .submit(&system, JobSpec::default(), index_cost_evaluator())
            .unwrap();
        let finished = service.wait(job).unwrap();
        let polled = service.poll(job).unwrap();
        assert_eq!(finished, polled);
        assert_eq!(polled.shards_in_flight, 0);
    }

    #[test]
    fn cancellation_stops_a_running_job() {
        // A deliberately slow evaluator so cancel lands mid-drain.
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let service = ExplorationService::start(ServiceConfig {
            workers: 2,
            batch_size: 4,
            ..ServiceConfig::default()
        });
        let system = scaling_system(8, 2).unwrap(); // 256 variants ≈ 500ms serial
        let job = service
            .submit(&system, JobSpec::default(), evaluator)
            .unwrap();
        let status = service.cancel(job).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        let settled = service.wait(job).unwrap();
        assert_eq!(settled.state, JobState::Cancelled);
        assert!(settled.report.accounted() < 256, "cancel landed mid-drain");
    }

    #[test]
    fn slow_batches_do_not_livelock_under_a_short_lease_timeout() {
        // One 32-variant shard at ~5ms per evaluation ≈ 160ms of work, a 50ms
        // lease timeout, and a batch size that never flushes by count. The
        // idle second worker expires stale leases every ~20ms, so without
        // interval-driven renewal the drain would lose its lease mid-batch,
        // get StaleLease on completion and restart forever.
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let service = ExplorationService::start(ServiceConfig {
            workers: 2,
            lease_timeout: Duration::from_millis(50),
            batch_size: 10_000,
        });
        let system = scaling_system(5, 2).unwrap(); // 32 variants
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "slow-batch".into(),
                    shard_count: 1,
                    top_k: 4,
                },
                evaluator,
            )
            .unwrap();
        // Bounded wait so a livelock regression fails instead of hanging.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let status = loop {
            let status = service.poll(job).unwrap();
            if status.state.is_terminal() {
                break status;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job livelocked: {status:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.accounted(), 32);
    }

    #[test]
    fn dropping_the_service_joins_workers_promptly() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let system = scaling_system(4, 2).unwrap();
        let _job = service
            .submit(&system, JobSpec::default(), index_cost_evaluator())
            .unwrap();
        drop(service); // must not hang
    }
}
