//! The long-running exploration service: registry + worker pool + client API.
//!
//! [`ExplorationService::start`] spawns a pool of OS worker threads that
//! repeatedly lease strided shards from the [`JobRegistry`], drain them
//! ([`crate::worker::drain_lease`]) and feed batched results back. Clients
//! talk to the service in-process through the methods here — submit, poll,
//! cancel, blocking wait, and an event subscription over `std::sync::mpsc`
//! channels (the offline environment has no async runtime; channels plus a
//! blocking `wait` cover the same call patterns) — or across processes via
//! the ndjson frontend in [`crate::wire`].
//!
//! With a [`ServiceConfig::store_dir`], the service becomes **durable**: the
//! registry write-ahead logs every submit / shard commit / cancel to a
//! [`spi_store::Wal`] in that directory, startup replays snapshot + records
//! (resuming interrupted jobs from their pending shards), and the
//! content-addressed result cache persists across restarts. [`quiesce`]
//! drains in-flight leases and compacts the store — the clean-shutdown path
//! `spi-explored` takes on EOF.
//!
//! [`quiesce`]: ExplorationService::quiesce

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spi_store::sched::HedgeConfig;
use spi_store::span::{self, Profile, SpanDrain, SpanIds, SpanRecorder, SpanSink};
use spi_store::trace::TraceSubscription;
use spi_store::{CacheLimit, MetricsRegistry, Wal};
use spi_variants::VariantSystem;

use crate::clock::{Clock, SystemClock};
use crate::durability::WalSink;
use crate::evaluator::Evaluator;
use crate::health::{HealthReport, Watchdog};
use crate::registry::{
    JobEvent, JobId, JobRegistry, JobSpec, JobStatus, Lease, RegistryConfig, RestoreStats,
};
use crate::wire::rebuild_from_recipe;
use crate::worker::{drain_lease_spanned, DrainOutcome, FlushResponse};
use crate::{ExploreError, Result};
use spi_model::json::JsonValue;

/// Tunables of an [`ExplorationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// The time source every deadline in the service reads: worker-loop
    /// expiry sweeps, lease grants (and thus hedging deadlines), flush
    /// stamps, watchdog sweeps and quiesce. The default [`SystemClock`]
    /// forwards to [`Instant::now`]; a simulation substitutes
    /// [`SimClock`](crate::SimClock) to jump time deterministically.
    pub clock: Arc<dyn Clock>,
    /// How long a lease survives without a batch or completion before its
    /// shard is re-queued.
    pub lease_timeout: Duration,
    /// Variants accounted per flushed batch.
    pub batch_size: usize,
    /// Speculative re-leasing policy for straggler shards.
    pub hedge: HedgeConfig,
    /// Directory of the durable store (WAL + snapshot + result cache).
    /// `None` keeps the service fully in-memory, as before.
    pub store_dir: Option<PathBuf>,
    /// Bound on the content-addressed result cache; unbounded by default.
    pub cache_limit: CacheLimit,
    /// Compact the WAL once its log exceeds this many bytes (checked after
    /// committed completions); `None` compacts only at quiesce.
    pub compact_log_bytes: Option<u64>,
    /// Capacity of the scheduler-decision trace ring drained over the
    /// `trace` op; `0` disables capture.
    pub trace_capacity: usize,
    /// Whether the metrics plane records anything. `false` swaps in
    /// [`MetricsRegistry::disabled`] — every instrumentation site collapses
    /// to one branch — and also disables the stall watchdog (its progress
    /// signals are metrics).
    pub metrics_enabled: bool,
    /// How often the background stall watchdog sweeps the registry for stuck
    /// leases, starved tenants and a stalled WAL; `None` disables the thread
    /// (the `health` op still sweeps inline on demand).
    pub watchdog_interval: Option<Duration>,
    /// Whether the span recorder captures anything. `false` swaps in
    /// [`SpanRecorder::disabled`] — every instrumentation site collapses to
    /// one branch, same discipline as `metrics_enabled`.
    pub spans_enabled: bool,
    /// Per-worker span ring capacity; `0` disables recording outright.
    pub span_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            clock: Arc::new(SystemClock),
            lease_timeout: Duration::from_secs(30),
            batch_size: 256,
            hedge: HedgeConfig::default(),
            store_dir: None,
            cache_limit: CacheLimit::UNBOUNDED,
            compact_log_bytes: None,
            trace_capacity: spi_store::trace::DEFAULT_TRACE_CAPACITY,
            metrics_enabled: true,
            watchdog_interval: Some(Duration::from_secs(1)),
            spans_enabled: true,
            span_capacity: span::DEFAULT_SPAN_CAPACITY,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` threads and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }
}

struct Inner {
    registry: Mutex<JobRegistry>,
    /// Signalled when shards become available (submit, expiry, abandon).
    work_available: Condvar,
    /// Signalled on shard completion / job termination, for [`wait`].
    progress: Condvar,
    shutdown: AtomicBool,
    /// Set by [`ExplorationService::quiesce`]: workers finish the lease they
    /// hold but take no new ones.
    draining: AtomicBool,
    batch_size: usize,
    /// Shared with the registry (and thus every instrumentation site).
    metrics: Arc<MetricsRegistry>,
    /// Shared stall detector: the background sweeper and on-demand `health`
    /// calls compare against the same progress baselines.
    watchdog: Mutex<Watchdog>,
    /// Where quiesce writes its final `metrics.json`, when durable.
    store_dir: Option<PathBuf>,
    /// The span recorder behind the profiling plane; every worker sink and
    /// the registry's own sink feed it.
    spans: Arc<SpanRecorder>,
    /// When the service came up — the zero point of `uptime_ns` stamps.
    started: Instant,
    /// The deadline time source (see [`ServiceConfig::clock`]).
    clock: Arc<dyn Clock>,
}

/// A running exploration service; dropping it stops the worker pool (workers
/// abandon in-flight shards, which re-queue for a future service over the
/// same registry state — with a store, also durably).
pub struct ExplorationService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// The background watchdog sweeper, when one is configured.
    sweeper: Option<JoinHandle<()>>,
    restored: RestoreStats,
}

impl ExplorationService {
    /// Starts the worker pool, recovering durable state first when the config
    /// names a store directory.
    ///
    /// # Panics
    ///
    /// Panics when the store cannot be opened or replayed — a durable service
    /// must not silently come up empty. Use [`try_start`](Self::try_start)
    /// to handle store failures programmatically.
    pub fn start(config: ServiceConfig) -> Self {
        Self::try_start(config).expect("store opens and replays")
    }

    /// Starts the worker pool; see [`start`](Self::start).
    ///
    /// # Errors
    ///
    /// [`ExploreError::Store`] when the store directory cannot be opened,
    /// its contents fail checksum validation, or replay finds malformed
    /// records.
    pub fn try_start(config: ServiceConfig) -> Result<Self> {
        let mut registry = JobRegistry::with_config(RegistryConfig {
            lease_timeout: config.lease_timeout,
            hedge: config.hedge,
            cache_limit: config.cache_limit,
            compact_log_bytes: config.compact_log_bytes,
            trace_capacity: config.trace_capacity,
        });
        let mut restored = RestoreStats::default();
        if let Some(dir) = &config.store_dir {
            let (wal, recovered) =
                Wal::open(dir).map_err(|e| ExploreError::Store(e.to_string()))?;
            restored = registry.restore(
                recovered.snapshot.as_ref(),
                &recovered.records,
                &rebuild_from_recipe,
            )?;
            registry.set_sink(Box::new(WalSink(wal)));
        }
        let metrics = Arc::new(if config.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        registry.set_metrics(Arc::clone(&metrics));
        let spans = Arc::new(if config.spans_enabled && config.span_capacity > 0 {
            SpanRecorder::new(config.span_capacity)
        } else {
            SpanRecorder::disabled()
        });
        // Trace-seq correlation: every span brackets the scheduler-decision
        // sequence numbers it overlapped.
        spans.link_trace_seq(registry.trace_seq_mirror());
        registry.set_spans(spans.sink("registry"));
        let inner = Arc::new(Inner {
            registry: Mutex::new(registry),
            work_available: Condvar::new(),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            batch_size: config.batch_size.max(1),
            metrics,
            watchdog: Mutex::new(Watchdog::new()),
            store_dir: config.store_dir.clone(),
            spans,
            started: Instant::now(),
            clock: Arc::clone(&config.clock),
        });
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("spi-explore-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("worker thread spawns")
            })
            .collect();
        let sweeper = config
            .watchdog_interval
            .filter(|_| config.metrics_enabled)
            .map(|interval| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("spi-explore-watchdog".to_string())
                    .spawn(move || watchdog_loop(&inner, interval))
                    .expect("watchdog thread spawns")
            });
        Ok(ExplorationService {
            inner,
            workers,
            sweeper,
            restored,
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// What startup recovery restored from the store (zeroes without one).
    pub fn restored(&self) -> RestoreStats {
        self.restored
    }

    /// Submits a job; returns immediately with its id.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::submit`].
    pub fn submit(
        &self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<JobId> {
        self.submit_with_recipe(system, spec, evaluator, None)
    }

    /// Submits a job carrying a construction recipe, making it recoverable
    /// across restarts and (with a canonical evaluator spec) cacheable.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::submit_with_recipe`].
    pub fn submit_with_recipe(
        &self,
        system: &VariantSystem,
        spec: JobSpec,
        evaluator: Arc<dyn Evaluator>,
        recipe: Option<JsonValue>,
    ) -> Result<JobId> {
        let id = self
            .registry()
            .submit_with_recipe(system, spec, evaluator, recipe)?;
        self.inner.work_available.notify_all();
        self.inner.progress.notify_all();
        Ok(id)
    }

    /// A point-in-time snapshot of the job.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::poll`].
    pub fn poll(&self, job: JobId) -> Result<JobStatus> {
        self.registry().poll(job)
    }

    /// Cancels the job (idempotent) and returns the resulting snapshot.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::cancel`].
    pub fn cancel(&self, job: JobId) -> Result<JobStatus> {
        let status = self.registry().cancel(job)?;
        self.inner.progress.notify_all();
        Ok(status)
    }

    /// Snapshots of every registered job, in submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let registry = self.registry();
        registry
            .job_ids()
            .into_iter()
            .filter_map(|id| registry.poll(id).ok())
            .collect()
    }

    /// `(entries, hits, misses)` of the content-addressed result cache.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        self.registry().cache_stats()
    }

    /// A point-in-time waitgraph snapshot (see [`JobRegistry::waitgraph`]):
    /// what every job, shard and lease is waiting on right now. Assembled
    /// under one registry lock acquisition, so it is never torn.
    pub fn waitgraph(&self) -> spi_model::GraphSnapshot {
        self.registry().waitgraph()
    }

    /// Drains the buffered scheduler-decision trace (see
    /// [`JobRegistry::drain_trace`]).
    pub fn drain_trace(&self) -> spi_store::TraceDrain {
        self.registry().drain_trace()
    }

    /// Reads trace events at or after `since` without consuming them (see
    /// [`JobRegistry::read_trace_since`]).
    pub fn read_trace_since(&self, since: u64) -> spi_store::TraceDrain {
        self.registry().read_trace_since(since)
    }

    /// The sequence number the next trace event will get.
    pub fn trace_next_seq(&self) -> u64 {
        self.registry().trace_next_seq()
    }

    /// Registers a bounded live trace subscription (see
    /// [`JobRegistry::subscribe_trace`]): every subsequent scheduler decision
    /// streams to the returned handle, slow consumers lag instead of ever
    /// blocking the scheduler.
    pub fn subscribe_trace(&self, queue: usize) -> TraceSubscription {
        self.registry().subscribe_trace(queue)
    }

    /// The service-wide metrics registry (counters, gauges, histograms,
    /// per-tenant rows). Shared with the registry and the worker pool; cheap
    /// to clone and safe to read without any service lock.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    /// The full metrics plane as one canonical JSON value — what the
    /// `metrics` op returns and quiesce writes to `metrics.json`.
    pub fn metrics_snapshot(&self) -> JsonValue {
        self.inner.metrics.snapshot()
    }

    /// [`metrics_snapshot`](Self::metrics_snapshot) with a capture header
    /// prepended: `captured_unix_ms` (wall clock) and `uptime_ns` (since
    /// service start). What the `metrics` op and `metrics.json` actually
    /// carry — the raw snapshot stays deliberately time-free so identical
    /// runs stay byte-identical.
    pub fn metrics_snapshot_stamped(&self) -> JsonValue {
        self.stamp(self.inner.metrics.snapshot())
    }

    /// The span recorder behind the profiling plane; cheap to clone, safe to
    /// read without any service lock.
    pub fn span_recorder(&self) -> Arc<SpanRecorder> {
        Arc::clone(&self.inner.spans)
    }

    /// Completed spans with sequence `>= since`, merged across every worker
    /// ring in completion order — the cursor feed behind `spans` watch
    /// frames.
    pub fn spans_since(&self, since: u64) -> SpanDrain {
        self.inner.spans.read_since(since)
    }

    /// Aggregates every recorded span into the per-phase profile: counts,
    /// total/self time, latency histograms, folded flamegraph stacks and
    /// per-job critical paths. What the `profile` op returns and quiesce
    /// writes to `profile.json`.
    pub fn profile(&self) -> Profile {
        let drain = self.inner.spans.read_since(0);
        Profile::from_spans(&drain.spans, drain.dropped)
    }

    /// [`profile`](Self::profile) as stamped canonical JSON.
    pub fn profile_snapshot(&self) -> JsonValue {
        self.stamp(self.profile().to_json())
    }

    /// Every recorded span as Chrome trace-event JSON (`ph:"X"` complete
    /// events, one process per tenant, one thread per worker) — load it at
    /// `ui.perfetto.dev` or `chrome://tracing`.
    pub fn chrome_trace(&self) -> JsonValue {
        let drain = self.inner.spans.read_since(0);
        span::chrome_trace(&drain.spans)
    }

    /// Prepends the capture header to a snapshot object.
    fn stamp(&self, value: JsonValue) -> JsonValue {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |since| since.as_millis() as i128);
        let uptime = self.inner.started.elapsed().as_nanos() as i128;
        let JsonValue::Object(fields) = value else {
            return value;
        };
        let mut stamped = Vec::with_capacity(fields.len() + 2);
        stamped.push(("captured_unix_ms".to_string(), JsonValue::Int(unix_ms)));
        stamped.push(("uptime_ns".to_string(), JsonValue::Int(uptime)));
        stamped.extend(fields);
        JsonValue::Object(stamped)
    }

    /// Sweeps the stall watchdog **now** against a fresh health observation
    /// and returns its report. Shares progress baselines with the background
    /// sweeper, so back-to-back calls inside the watchdog's minimum window
    /// still compare against a meaningful prior sweep.
    pub fn health(&self) -> HealthReport {
        let now = self.inner.clock.now();
        let observation = self.registry().observe_health(now);
        self.inner
            .watchdog
            .lock()
            .expect("watchdog lock")
            .sweep(&observation, now)
    }

    /// `true` when nothing is running or leased — the condition the `watch`
    /// op ends on.
    pub fn is_idle(&self) -> bool {
        let registry = self.registry();
        registry.running_jobs() == 0 && registry.live_lease_count() == 0
    }

    /// Subscribes to the job's event stream (improvements, shard completions,
    /// termination) over an `mpsc` channel.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::subscribe`].
    pub fn subscribe(&self, job: JobId) -> Result<mpsc::Receiver<JobEvent>> {
        self.registry().subscribe(job)
    }

    /// Blocks until the job reaches a terminal state and returns its final,
    /// exact snapshot.
    ///
    /// # Errors
    ///
    /// As [`JobRegistry::poll`].
    pub fn wait(&self, job: JobId) -> Result<JobStatus> {
        let mut registry = self.inner.registry.lock().expect("registry lock");
        loop {
            let status = registry.poll(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            let (guard, _) = self
                .inner
                .progress
                .wait_timeout(registry, Duration::from_millis(50))
                .expect("registry lock");
            registry = guard;
        }
    }

    /// The clean-shutdown path: stop taking new leases, let every in-flight
    /// lease **drain to completion** (its staged report commits — nothing is
    /// abandoned mid-drain), then compact the store to a synced snapshot.
    /// Pending shards stay pending; with a store they resume on the next
    /// start. Idempotent; the service keeps answering queries afterwards,
    /// but its workers are permanently idle.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Store`] when the final compaction fails (in-flight
    /// work was still committed as far as the WAL allowed).
    pub fn quiesce(&self) -> Result<()> {
        self.inner.draining.store(true, Ordering::Relaxed);
        self.inner.work_available.notify_all();
        let mut registry = self.inner.registry.lock().expect("registry lock");
        loop {
            // Draining workers stop running expiry, so the quiesce loop takes
            // it over — a lease orphaned by a dead or wedged worker must not
            // hold the shutdown hostage (live drains keep renewing via their
            // flushes and are unaffected).
            registry.expire(self.inner.clock.now());
            if registry.live_lease_count() == 0 {
                registry.compact_store()?;
                drop(registry);
                // The final metrics and profile snapshots land next to the
                // WAL — a post-mortem of the run that survives the process.
                if let Some(dir) = &self.inner.store_dir {
                    if self.inner.metrics.is_enabled() {
                        let line = self.metrics_snapshot_stamped().to_line();
                        std::fs::write(dir.join("metrics.json"), line + "\n")
                            .map_err(|e| ExploreError::Store(e.to_string()))?;
                    }
                    if self.inner.spans.is_enabled() {
                        let line = self.profile_snapshot().to_line();
                        std::fs::write(dir.join("profile.json"), line + "\n")
                            .map_err(|e| ExploreError::Store(e.to_string()))?;
                    }
                }
                return Ok(());
            }
            let (guard, _) = self
                .inner
                .progress
                .wait_timeout(registry, Duration::from_millis(10))
                .expect("registry lock");
            registry = guard;
        }
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, JobRegistry> {
        self.inner.registry.lock().expect("registry lock")
    }
}

impl Drop for ExplorationService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    let thread = std::thread::current();
    let worker: Arc<str> = thread.name().unwrap_or("anonymous").into();
    // One sink per worker thread: lock-free enter/exit into this worker's
    // ring, flushed on exit. Lives for the whole loop.
    let spans = inner.spans.sink(&worker);
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let lease = {
            let mut registry = inner.registry.lock().expect("registry lock");
            let draining = inner.draining.load(Ordering::Relaxed);
            if !draining {
                registry.expire(inner.clock.now());
            }
            match (!draining)
                .then(|| registry.lease_as(&worker, inner.clock.now()))
                .flatten()
            {
                Some(lease) => Some(lease),
                None => {
                    // Idle-wait; the timeout re-checks lease expiry and
                    // shutdown even if no submit ever signals.
                    let _ = inner
                        .work_available
                        .wait_timeout(registry, Duration::from_millis(20))
                        .expect("registry lock");
                    None
                }
            }
        };
        if let Some(lease) = lease {
            process_lease(inner, &lease, &spans, &worker);
        }
    }
}

/// Periodic stall sweeps; exits with the worker pool. Sleeps in short slices
/// so a service drop joins promptly even under a long interval.
fn watchdog_loop(inner: &Inner, interval: Duration) {
    let slice = Duration::from_millis(25).min(interval);
    let mut next_sweep = Instant::now() + interval;
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now < next_sweep {
            std::thread::sleep(slice.min(next_sweep - now));
            continue;
        }
        next_sweep = now + interval;
        // Sweep pacing runs on wall time (the sleeps above), but the
        // observation itself reads the service clock so simulated-time
        // jumps are visible to stall detection.
        let sweep_now = inner.clock.now();
        let observation = {
            let registry = inner.registry.lock().expect("registry lock");
            registry.observe_health(sweep_now)
        };
        let _ = inner
            .watchdog
            .lock()
            .expect("watchdog lock")
            .sweep(&observation, sweep_now);
    }
}

fn process_lease(inner: &Inner, lease: &Lease, spans: &SpanSink, worker: &Arc<str>) {
    if spans.is_enabled() {
        // Every span recorded during this drain carries the lease's full
        // waitgraph attribution.
        spans.set_context(SpanIds {
            job: Some(lease.job.raw()),
            shard: Some(lease.shard as u64),
            lease: Some(lease.lease.raw()),
            tenant: Some(lease.tenant.as_str().into()),
            worker: Some(Arc::clone(worker)),
        });
    }
    let outcome = drain_lease_spanned(
        lease,
        inner.batch_size,
        &inner.metrics,
        spans,
        || inner.shutdown.load(Ordering::Relaxed),
        |delta, is_final| {
            let mut registry = inner.registry.lock().expect("registry lock");
            let result = if is_final {
                registry.complete_shard(lease.lease, delta, inner.clock.now())
            } else {
                registry
                    .report_batch(lease.lease, delta, inner.clock.now())
                    .map(|()| false)
            };
            drop(registry);
            match result {
                Ok(_) => {
                    if is_final {
                        inner.progress.notify_all();
                    }
                    FlushResponse::Continue
                }
                Err(_) => FlushResponse::Stop,
            }
        },
    );
    match outcome {
        DrainOutcome::Stopped | DrainOutcome::Stale => {
            // Stopped: service shutdown or job cancel. Stale: a flush was
            // rejected — usually a genuinely stale lease (expired, hedged
            // over), but also a *store* failure on the final commit, where
            // the registry deliberately keeps the lease live. Abandon covers
            // both: a no-op for truly stale leases, an immediate
            // requeue-and-release for the store-failure case (instead of
            // stalling the shard for a whole lease timeout — or hanging
            // quiesce forever, since draining workers no longer expire).
            let mut registry = inner.registry.lock().expect("registry lock");
            registry.abandon(lease.lease);
            drop(registry);
            inner.work_available.notify_all();
            inner.progress.notify_all();
        }
        DrainOutcome::Completed => {
            // The lease is spent; quiesce may be waiting on it.
            inner.progress.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{Evaluation, FnEvaluator};
    use crate::registry::JobState;
    use spi_workloads::scaling_system;

    fn index_cost_evaluator() -> Arc<dyn Evaluator> {
        Arc::new(FnEvaluator::new(|index, _c, _g| {
            Ok(Evaluation {
                cost: ((index as u64) * 131) % 251,
                feasible: true,
                detail: format!("v{index}"),
            })
        }))
    }

    #[test]
    fn service_drains_a_job_to_completion() {
        let service = ExplorationService::start(ServiceConfig::with_workers(4));
        let system = scaling_system(6, 2).unwrap(); // 64 variants
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "drain".into(),
                    shard_count: 8,
                    top_k: 4,
                    ..JobSpec::default()
                },
                index_cost_evaluator(),
            )
            .unwrap();
        let status = service.wait(job).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 64);
        assert_eq!(status.report.accounted(), 64);
        assert_eq!(status.shards_done, 8);
        // Best is the index minimizing (131·i mod 251, i): i=23 gives cost 1.
        let best = status.best().unwrap();
        let serial_best = (0..64u64).map(|i| ((i * 131) % 251, i)).min().unwrap();
        assert_eq!((best.cost, best.index as u64), serial_best);
        assert_eq!(status.report.top.len(), 4);
    }

    #[test]
    fn wait_and_poll_agree_on_terminal_state() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let system = scaling_system(4, 2).unwrap();
        let job = service
            .submit(&system, JobSpec::default(), index_cost_evaluator())
            .unwrap();
        let finished = service.wait(job).unwrap();
        let polled = service.poll(job).unwrap();
        assert_eq!(finished, polled);
        assert_eq!(polled.shards_in_flight, 0);
    }

    #[test]
    fn cancellation_stops_a_running_job() {
        // A deliberately slow evaluator so cancel lands mid-drain.
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let service = ExplorationService::start(ServiceConfig {
            workers: 2,
            batch_size: 4,
            ..ServiceConfig::default()
        });
        let system = scaling_system(8, 2).unwrap(); // 256 variants ≈ 500ms serial
        let job = service
            .submit(&system, JobSpec::default(), evaluator)
            .unwrap();
        let status = service.cancel(job).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        let settled = service.wait(job).unwrap();
        assert_eq!(settled.state, JobState::Cancelled);
        assert!(settled.report.accounted() < 256, "cancel landed mid-drain");
    }

    #[test]
    fn slow_batches_do_not_livelock_under_a_short_lease_timeout() {
        // One 32-variant shard at ~5ms per evaluation ≈ 160ms of work, a 50ms
        // lease timeout, and a batch size that never flushes by count. The
        // idle second worker expires stale leases every ~20ms, so without
        // interval-driven renewal the drain would lose its lease mid-batch,
        // get StaleLease on completion and restart forever.
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let service = ExplorationService::start(ServiceConfig {
            workers: 2,
            lease_timeout: Duration::from_millis(50),
            batch_size: 10_000,
            ..ServiceConfig::default()
        });
        let system = scaling_system(5, 2).unwrap(); // 32 variants
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "slow-batch".into(),
                    shard_count: 1,
                    top_k: 4,
                    ..JobSpec::default()
                },
                evaluator,
            )
            .unwrap();
        // Bounded wait so a livelock regression fails instead of hanging.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let status = loop {
            let status = service.poll(job).unwrap();
            if status.state.is_terminal() {
                break status;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job livelocked: {status:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.accounted(), 32);
    }

    #[test]
    fn dropping_the_service_joins_workers_promptly() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let system = scaling_system(4, 2).unwrap();
        let _job = service
            .submit(&system, JobSpec::default(), index_cost_evaluator())
            .unwrap();
        drop(service); // must not hang
    }

    #[test]
    fn quiesce_commits_in_flight_leases_and_stops_new_ones() {
        let evaluator = Arc::new(FnEvaluator::new(|index, _c, _g| {
            std::thread::sleep(Duration::from_millis(3));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        let service = ExplorationService::start(ServiceConfig {
            workers: 2,
            batch_size: 2,
            ..ServiceConfig::default()
        });
        let system = scaling_system(6, 2).unwrap(); // 64 variants
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "quiesce".into(),
                    shard_count: 16,
                    top_k: 8,
                    ..JobSpec::default()
                },
                evaluator,
            )
            .unwrap();
        service.quiesce().unwrap();
        let status = service.poll(job).unwrap();
        assert_eq!(status.shards_in_flight, 0, "no lease survives a quiesce");
        // Whatever was accounted is exactly the committed shards — in-flight
        // drains completed their whole shard (4 variants each), nothing was
        // torn mid-shard.
        assert_eq!(status.report.accounted(), status.shards_done as u64 * 4);
        // Quiesce is idempotent and the service still answers.
        service.quiesce().unwrap();
        assert!(service.poll(job).is_ok());
    }
}
