//! `spi-explored` — the exploration service as a process.
//!
//! Speaks the ndjson protocol of [`spi_explore::wire`] over stdin/stdout:
//!
//! ```text
//! $ echo '{"op":"submit","system":{"scaling":{"interfaces":5,"clusters":2}},"shards":8}
//! {"op":"wait","job":0}
//! {"op":"shutdown"}' | spi-explored --workers 8 --store /var/lib/spi
//! ```
//!
//! Flags: `--workers N` (pool size, default: available parallelism),
//! `--batch N` (variants per result batch, default 256), `--lease-ms N`
//! (lease timeout, default 30000), `--store DIR` (durable job state: WAL +
//! snapshot + result cache; the process can be killed and restarted on the
//! same directory and resumes its jobs), `--cache-limit N` (cap the result
//! cache at N entries, LRU-evicted; default unbounded),
//! `--compact-log-bytes N` (compact the WAL whenever the log outgrows N
//! bytes, not only at quiesce), `--no-hedge` (disable speculative
//! re-leases), `--trace-capacity N` (size of the scheduler-decision trace
//! ring drained by the `trace` op; 0 disables capture), `--no-metrics`
//! (disable the metrics plane: counters, histograms, the `metrics` op and
//! the watchdog), `--no-spans` (disable the profiling plane: phase spans,
//! the `profile`/`spans` ops, span watch frames and the quiesce
//! `profile.json`), `--span-capacity N` (per-worker span ring capacity,
//! default 65536; 0 disables recording), `--watchdog-interval MS`
//! (background stall-sweep period for the `health` op; 0 disables the
//! sweeper thread, default 1000).
//! Diagnostics go to stderr; stdout carries exactly one JSON response line
//! per request — except `watch`, which streams frames until the service
//! goes idle.
//!
//! Shutdown semantics: both the `shutdown` op and **EOF on stdin** end the
//! session cleanly — in-flight shard drains run to completion and commit,
//! then the store is compacted and synced. Pending shards resume on the next
//! start over the same `--store` directory.
//!
//! The full operator guide — every op with request/response examples, flag
//! reference and recovery semantics — lives in `docs/spi-explored.md`.

use std::io::{BufReader, Write};
use std::time::Duration;

use spi_explore::{run_session, ExplorationService, HedgeConfig, ServiceConfig};
use spi_store::CacheLimit;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|at| args.get(at + 1))
        .and_then(|value| value.parse().ok())
}

fn parse_text_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|at| args.get(at + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--help" || arg == "-h") {
        eprintln!(
            "usage: spi-explored [--workers N] [--batch N] [--lease-ms N] [--store DIR]\n\
                    [--cache-limit N] [--compact-log-bytes N] [--no-hedge] [--trace-capacity N]\n\
                    [--no-metrics] [--no-spans] [--span-capacity N] [--watchdog-interval MS]\n\
             ndjson requests on stdin, one JSON response per line on stdout;\n\
             ops: submit | poll | wait | top | jobs | cancel | graph | trace |\n\
                  metrics | profile | spans | health | watch | shutdown\n\
             EOF on stdin quiesces cleanly: in-flight shards commit, the store compacts."
        );
        return;
    }
    let mut config = ServiceConfig::default();
    if let Some(workers) = parse_flag(&args, "--workers") {
        config.workers = (workers as usize).max(1);
    }
    if let Some(batch) = parse_flag(&args, "--batch") {
        config.batch_size = (batch as usize).max(1);
    }
    if let Some(lease_ms) = parse_flag(&args, "--lease-ms") {
        config.lease_timeout = Duration::from_millis(lease_ms.max(1));
    }
    if let Some(store) = parse_text_flag(&args, "--store") {
        config.store_dir = Some(store.into());
    }
    if let Some(entries) = parse_flag(&args, "--cache-limit") {
        config.cache_limit = CacheLimit::entries(entries as usize);
    }
    if let Some(bytes) = parse_flag(&args, "--compact-log-bytes") {
        config.compact_log_bytes = Some(bytes);
    }
    if args.iter().any(|arg| arg == "--no-hedge") {
        config.hedge = HedgeConfig::disabled();
    }
    if let Some(capacity) = parse_flag(&args, "--trace-capacity") {
        config.trace_capacity = capacity as usize;
    }
    if args.iter().any(|arg| arg == "--no-metrics") {
        config.metrics_enabled = false;
    }
    if args.iter().any(|arg| arg == "--no-spans") {
        config.spans_enabled = false;
    }
    if let Some(capacity) = parse_flag(&args, "--span-capacity") {
        config.span_capacity = capacity as usize;
    }
    if let Some(interval_ms) = parse_flag(&args, "--watchdog-interval") {
        config.watchdog_interval = if interval_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(interval_ms))
        };
    }

    eprintln!(
        "spi-explored: {} workers, batch {}, lease {:?}, store {}, cache limit {}",
        config.workers,
        config.batch_size,
        config.lease_timeout,
        config
            .store_dir
            .as_deref()
            .map_or("none".to_string(), |dir| dir.display().to_string()),
        config
            .cache_limit
            .max_entries
            .map_or("unbounded".to_string(), |n| format!("{n} entries")),
    );
    let service = match ExplorationService::try_start(config) {
        Ok(service) => service,
        Err(error) => {
            eprintln!("spi-explored: failed to start: {error}");
            std::process::exit(1);
        }
    };
    let restored = service.restored();
    if restored.jobs > 0 {
        eprintln!(
            "spi-explored: recovered {} jobs ({} resumed, {} shards requeued, \
             {} unrecoverable, {} cached results)",
            restored.jobs,
            restored.resumed,
            restored.requeued_shards,
            restored.unrecoverable,
            restored.cache_entries,
        );
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    if let Err(error) = run_session(&service, BufReader::new(stdin.lock()), &mut stdout) {
        eprintln!("spi-explored: i/o error: {error}");
    }
    let _ = stdout.flush();
}
