//! `spi-explored` — the exploration service as a process.
//!
//! Speaks the ndjson protocol of [`spi_explore::wire`] over stdin/stdout:
//!
//! ```text
//! $ echo '{"op":"submit","system":{"scaling":{"interfaces":5,"clusters":2}},"shards":8}
//! {"op":"wait","job":0}
//! {"op":"shutdown"}' | spi-explored --workers 8
//! ```
//!
//! Flags: `--workers N` (pool size, default: available parallelism),
//! `--batch N` (variants per result batch, default 256), `--lease-ms N`
//! (lease timeout, default 30000). Diagnostics go to stderr; stdout carries
//! exactly one JSON response line per request.

use std::io::{BufReader, Write};
use std::time::Duration;

use spi_explore::{serve, ExplorationService, ServiceConfig};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|at| args.get(at + 1))
        .and_then(|value| value.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--help" || arg == "-h") {
        eprintln!(
            "usage: spi-explored [--workers N] [--batch N] [--lease-ms N]\n\
             ndjson requests on stdin, one JSON response per line on stdout;\n\
             ops: submit | poll | wait | top | jobs | cancel | shutdown"
        );
        return;
    }
    let mut config = ServiceConfig::default();
    if let Some(workers) = parse_flag(&args, "--workers") {
        config.workers = (workers as usize).max(1);
    }
    if let Some(batch) = parse_flag(&args, "--batch") {
        config.batch_size = (batch as usize).max(1);
    }
    if let Some(lease_ms) = parse_flag(&args, "--lease-ms") {
        config.lease_timeout = Duration::from_millis(lease_ms.max(1));
    }

    eprintln!(
        "spi-explored: {} workers, batch {}, lease {:?}",
        config.workers, config.batch_size, config.lease_timeout
    );
    let service = ExplorationService::start(config);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    if let Err(error) = serve(&service, BufReader::new(stdin.lock()), &mut stdout) {
        eprintln!("spi-explored: i/o error: {error}");
    }
    let _ = stdout.flush();
}
