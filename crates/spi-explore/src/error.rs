//! Error type of the exploration service.

use std::fmt;

use crate::registry::{JobId, LeaseId};

/// Error raised by the exploration service and its protocol frontends.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The referenced job does not exist.
    UnknownJob(JobId),
    /// The lease is no longer valid: it expired and was re-queued, its job was
    /// cancelled, or it was already completed. Work reported under a stale
    /// lease is discarded — this is what makes re-leased shards count once.
    StaleLease(LeaseId),
    /// The job specification is unusable (zero shards, empty space rejected by
    /// policy, bad evaluator parameters, ...).
    InvalidSpec(String),
    /// A wire-protocol request could not be interpreted.
    Protocol(String),
    /// The durable store refused a transition (sink append/compact failure,
    /// malformed record during recovery). The transition did not happen.
    Store(String),
    /// Error from the variants layer (system validation, flattening).
    Variants(spi_variants::VariantError),
    /// Error from the synthesis layer (problem derivation, optimization).
    Synth(spi_synth::SynthError),
    /// Error from the workloads layer (scenario construction).
    Workload(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::UnknownJob(job) => write!(f, "unknown job {job}"),
            ExploreError::StaleLease(lease) => write!(f, "stale lease {lease}"),
            ExploreError::InvalidSpec(message) => write!(f, "invalid job spec: {message}"),
            ExploreError::Protocol(message) => write!(f, "protocol error: {message}"),
            ExploreError::Store(message) => write!(f, "store error: {message}"),
            ExploreError::Variants(e) => write!(f, "variants error: {e}"),
            ExploreError::Synth(e) => write!(f, "synthesis error: {e}"),
            ExploreError::Workload(message) => write!(f, "workload error: {message}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Variants(e) => Some(e),
            ExploreError::Synth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<spi_variants::VariantError> for ExploreError {
    fn from(e: spi_variants::VariantError) -> Self {
        ExploreError::Variants(e)
    }
}

impl From<spi_synth::SynthError> for ExploreError {
    fn from(e: spi_synth::SynthError) -> Self {
        ExploreError::Synth(e)
    }
}

impl From<spi_workloads::WorkloadError> for ExploreError {
    fn from(e: spi_workloads::WorkloadError) -> Self {
        ExploreError::Workload(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let unknown = ExploreError::UnknownJob(JobId::from_raw(7));
        assert!(unknown.to_string().contains("job#7"));
        let stale = ExploreError::StaleLease(LeaseId::from_raw(3));
        assert!(stale.to_string().contains("lease#3"));
        let synth: ExploreError = spi_synth::SynthError::NoApplications.into();
        assert!(std::error::Error::source(&synth).is_some());
        let variants: ExploreError = spi_variants::VariantError::Validation("x".into()).into();
        assert!(variants.to_string().contains("variants error"));
    }
}
