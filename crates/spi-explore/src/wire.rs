//! The ndjson wire protocol of `spi-explored`.
//!
//! One JSON object per line in, one JSON object per line out — a protocol a
//! shell script, a CI step or another service can drive over stdin/stdout.
//! Requests name an `"op"`; responses echo the op and carry `"ok"`:
//!
//! ```text
//! → {"op":"submit","system":{"scaling":{"interfaces":5,"clusters":2}},"shards":8,"top_k":4}
//! ← {"ok":true,"op":"submit","job":0,"combinations":32,"shards":8}
//! → {"op":"wait","job":0}
//! ← {"ok":true,"op":"wait","job":0,"state":"completed","evaluated":32,...,"best":{...},"top":[...]}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```
//!
//! Ops: `submit`, `poll`, `wait`, `top`, `jobs`, `cancel`, `graph`, `trace`,
//! `metrics`, `profile`, `spans`, `health`, `watch`, `shutdown`.
//! `submit` also takes `tenant` (fair-queuing bucket), `weight` (its WFQ
//! share) and `no_cache` (bypass the result cache); responses carry
//! `cache_hit` so a client can tell a served-from-cache job (`evaluated` is
//! then 0 and `top` is the cached optimum). `trace` with a `since` cursor
//! reads non-destructively from that sequence number (without `since` it
//! drains, as before). `metrics` returns the full
//! [`MetricsRegistry`](spi_store::MetricsRegistry) snapshot under a
//! `captured_unix_ms`/`uptime_ns` capture header, `profile` returns the
//! span-derived per-phase profile (counts, total/self time, latency
//! histograms, folded flamegraph stacks, per-job critical paths), `spans`
//! exports every recorded span as Chrome trace-event JSON (load it in
//! Perfetto), `health` runs a stall-watchdog sweep, and `watch` upgrades the
//! session to a **streaming subscription** — multiple response lines
//! (`frame`: `trace` / `metrics` / `spans` / `lagged` / `end`) until the
//! service goes idle; see [`serve`]. Malformed
//! requests answer `{"ok":false,"error":...}` and the stream continues; only
//! `shutdown` (or EOF) ends [`serve`] — [`run_session`] then quiesces the
//! service, so a closed stdin is a clean shutdown (in-flight shards commit,
//! the store compacts), not an exit mid-drain.
//!
//! Systems are specified by **construction recipe** — `{"scaling":
//! {"interfaces":k,"clusters":m}}`, a full `{"synthetic":{...}}` parameter
//! set, or a named `{"scenario":"tv"|"automotive"|"figure2"}` — rather than
//! as a serialized graph: recipes are a few bytes, deterministic, and the
//! generators already live in `spi-workloads` on both sides. Results travel
//! back with every symbol resolved to its string (see `spi_model::json`), so
//! a receiving process can re-intern and keep computing.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_model::json::{FromJson, JsonValue, ToJson};
use spi_store::metrics::CounterId;
use spi_synth::{FeasibilityMode, SearchStrategy, TaskParams};
use spi_variants::VariantSystem;
use spi_workloads::{automotive_system, figure2_system, synthetic_system, SyntheticParams};

use crate::error::ExploreError;
use crate::evaluator::{Evaluator, PartitionEvaluator, TaskParamsSpec};
use crate::registry::{JobId, JobSpec, JobStatus};
use crate::service::ExplorationService;
use crate::Result;

/// Renders a status snapshot as the wire object shared by `poll`, `wait` and
/// `cancel` responses.
pub fn status_to_json(op: &str, status: &JobStatus) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::Bool(true)),
        ("op", JsonValue::string(op)),
        ("job", status.job.raw().to_json()),
        ("name", status.name.to_json()),
        ("tenant", status.tenant.to_json()),
        ("cache_hit", JsonValue::Bool(status.cache_hit)),
        ("hedges_issued", status.hedges_issued.to_json()),
        ("hedge_wins", status.hedge_wins.to_json()),
        ("state", JsonValue::string(status.state.to_string())),
        ("combinations", status.combinations.to_json()),
        ("shards", status.shard_count.to_json()),
        ("shards_done", status.shards_done.to_json()),
        ("shards_in_flight", status.shards_in_flight.to_json()),
        ("evaluated", status.report.evaluated.to_json()),
        ("feasible", status.report.feasible.to_json()),
        ("pruned", status.report.pruned.to_json()),
        ("errors", status.report.errors.to_json()),
        ("eval_ns", JsonValue::Int(status.report.eval_ns as i128)),
        (
            "best",
            status
                .best()
                .map(ToJson::to_json)
                .unwrap_or(JsonValue::Null),
        ),
        ("top", status.report.top.to_json()),
    ])
}

fn error_response(error: &ExploreError) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::string(error.to_string())),
    ])
}

fn parse_system(value: &JsonValue) -> Result<VariantSystem> {
    if let Some(scaling) = value.get("scaling") {
        let interfaces = scaling
            .get("interfaces")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| ExploreError::Protocol("scaling.interfaces required".into()))?;
        let clusters = scaling
            .get("clusters")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| ExploreError::Protocol("scaling.clusters required".into()))?;
        return Ok(spi_workloads::scaling_system(interfaces, clusters)?);
    }
    if let Some(synthetic) = value.get("synthetic") {
        let field = |name: &str, default: usize| {
            synthetic
                .get(name)
                .and_then(JsonValue::as_usize)
                .unwrap_or(default)
        };
        let params = SyntheticParams {
            common_tasks: field("common_tasks", 4),
            interfaces: field("interfaces", 2),
            clusters_per_interface: field("clusters_per_interface", 3),
            cluster_depth: field("cluster_depth", 2),
            seed: synthetic
                .get("seed")
                .and_then(JsonValue::as_u64)
                .unwrap_or(42),
        };
        return Ok(synthetic_system(&params)?);
    }
    if let Some(scenario) = value.get("scenario").and_then(JsonValue::as_str) {
        return match scenario {
            "tv" => Ok(spi_workloads::tv_system()?),
            "automotive" => Ok(automotive_system()?),
            "figure2" => Ok(figure2_system()?),
            other => Err(ExploreError::Protocol(format!(
                "unknown scenario `{other}` (expected tv | automotive | figure2)"
            ))),
        };
    }
    Err(ExploreError::Protocol(
        "system must specify `scaling`, `synthetic` or `scenario`".into(),
    ))
}

fn parse_evaluator(value: Option<&JsonValue>) -> Result<Arc<dyn Evaluator>> {
    let mut evaluator = PartitionEvaluator::default();
    let Some(value) = value else {
        return Ok(Arc::new(evaluator));
    };
    if let Some(kind) = value.get("kind").and_then(JsonValue::as_str) {
        if kind != "partition" {
            return Err(ExploreError::Protocol(format!(
                "unknown evaluator kind `{kind}` (only `partition` speaks ndjson)"
            )));
        }
    }
    if let Some(cost) = value.get("processor_cost").and_then(JsonValue::as_u64) {
        evaluator.processor_cost = cost;
    }
    if let Some(strategy) = value.get("strategy").and_then(JsonValue::as_str) {
        evaluator.strategy = match strategy {
            "auto" => SearchStrategy::Auto,
            "exhaustive" => SearchStrategy::Exhaustive,
            "branch_and_bound" => SearchStrategy::BranchAndBound,
            "greedy" => SearchStrategy::Greedy,
            other => {
                return Err(ExploreError::Protocol(format!(
                    "unknown strategy `{other}`"
                )))
            }
        };
    }
    if let Some(mode) = value.get("mode").and_then(JsonValue::as_str) {
        evaluator.mode = match mode {
            "per_application" => FeasibilityMode::PerApplication,
            "serialized" => FeasibilityMode::Serialized,
            other => return Err(ExploreError::Protocol(format!("unknown mode `{other}`"))),
        };
    }
    if let Some(params) = value.get("params") {
        evaluator.params = parse_params(params)?;
    }
    Ok(Arc::new(evaluator))
}

fn parse_params(value: &JsonValue) -> Result<TaskParamsSpec> {
    match value.get("kind").and_then(JsonValue::as_str) {
        Some("hashed") | None => Ok(TaskParamsSpec::Hashed {
            seed: value.get("seed").and_then(JsonValue::as_u64).unwrap_or(42),
        }),
        Some("uniform") => {
            let field = |name: &str, default: u64| {
                value
                    .get(name)
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(default)
            };
            Ok(TaskParamsSpec::Uniform(TaskParams {
                sw_time: field("sw_time", 10),
                period: field("period", 100),
                hw_area: field("hw_area", 20),
                synthesis_effort: field("synthesis_effort", 5),
            }))
        }
        Some(other) => Err(ExploreError::Protocol(format!(
            "unknown params kind `{other}`"
        ))),
    }
}

/// Rebuilds the `(system, evaluator)` of a stored submission recipe —
/// `{"system": ..., "evaluator": ...}` as recorded by the `submit` op — using
/// the same parsers the live wire uses. This is the [`RebuildFn`] the service
/// hands to [`JobRegistry::restore`](crate::JobRegistry::restore) at startup.
///
/// # Errors
///
/// [`ExploreError::Protocol`] for unknown recipes, plus any construction
/// error from the workloads layer.
///
/// [`RebuildFn`]: crate::registry::RebuildFn
pub fn rebuild_from_recipe(
    recipe: &JsonValue,
) -> Result<(spi_variants::VariantSystem, Arc<dyn Evaluator>)> {
    let system = parse_system(
        recipe
            .get("system")
            .ok_or_else(|| ExploreError::Protocol("recipe missing `system`".into()))?,
    )?;
    let evaluator = parse_evaluator(recipe.get("evaluator"))?;
    Ok((system, evaluator))
}

fn job_of(request: &JsonValue) -> Result<JobId> {
    request
        .get("job")
        .and_then(JsonValue::as_u64)
        .map(JobId::from_raw)
        .ok_or_else(|| ExploreError::Protocol("`job` id required".into()))
}

/// Handles one request object against the service; the building block of
/// [`serve`] and directly callable from tests.
pub fn handle_request(service: &ExplorationService, request: &JsonValue) -> JsonValue {
    match dispatch(service, request) {
        Ok(response) => response,
        Err(error) => error_response(&error),
    }
}

fn dispatch(service: &ExplorationService, request: &JsonValue) -> Result<JsonValue> {
    let op = request
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ExploreError::Protocol("`op` required".into()))?;
    match op {
        "submit" => {
            let system_value = request
                .get("system")
                .ok_or_else(|| ExploreError::Protocol("`system` required".into()))?;
            let system = parse_system(system_value)?;
            let evaluator = parse_evaluator(request.get("evaluator"))?;
            let spec = JobSpec {
                name: request
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("ndjson")
                    .to_string(),
                shard_count: request
                    .get("shards")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or_else(|| JobSpec::default().shard_count),
                top_k: request
                    .get("top_k")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or_else(|| JobSpec::default().top_k),
                tenant: request
                    .get("tenant")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("default")
                    .to_string(),
                weight: request
                    .get("weight")
                    .and_then(JsonValue::as_u64)
                    .and_then(|weight| u32::try_from(weight).ok())
                    .unwrap_or(1)
                    .max(1),
                use_cache: !request
                    .get("no_cache")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            };
            // The recipe makes the job durable (replayable after a restart)
            // and content-addressable (cacheable): it is exactly the request's
            // own construction description, echoed into the store.
            let mut recipe = vec![("system".to_string(), system_value.clone())];
            if let Some(evaluator_value) = request.get("evaluator") {
                recipe.push(("evaluator".to_string(), evaluator_value.clone()));
            }
            let job = service.submit_with_recipe(
                &system,
                spec,
                evaluator,
                Some(JsonValue::Object(recipe)),
            )?;
            let status = service.poll(job)?;
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("submit")),
                ("job", job.raw().to_json()),
                ("combinations", status.combinations.to_json()),
                ("shards", status.shard_count.to_json()),
                ("cache_hit", JsonValue::Bool(status.cache_hit)),
                ("state", JsonValue::string(status.state.to_string())),
            ]))
        }
        "poll" => Ok(status_to_json("poll", &service.poll(job_of(request)?)?)),
        "wait" => Ok(status_to_json("wait", &service.wait(job_of(request)?)?)),
        "cancel" => Ok(status_to_json("cancel", &service.cancel(job_of(request)?)?)),
        "top" => {
            let status = service.poll(job_of(request)?)?;
            let k = request
                .get("k")
                .and_then(JsonValue::as_usize)
                .unwrap_or(status.report.top.len());
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("top")),
                ("job", status.job.raw().to_json()),
                (
                    "top",
                    status.report.top[..k.min(status.report.top.len())]
                        .to_vec()
                        .to_json(),
                ),
            ]))
        }
        "jobs" => {
            let statuses = service.jobs();
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("jobs")),
                ("cache", {
                    let (entries, hits, misses) = service.cache_stats();
                    JsonValue::object([
                        ("entries", entries.to_json()),
                        ("hits", hits.to_json()),
                        ("misses", misses.to_json()),
                    ])
                }),
                ("tenants", tenant_rollups(&statuses)),
                (
                    "jobs",
                    JsonValue::Array(
                        statuses
                            .iter()
                            .map(|status| {
                                JsonValue::object([
                                    ("job", status.job.raw().to_json()),
                                    ("name", status.name.to_json()),
                                    ("state", JsonValue::string(status.state.to_string())),
                                    ("shards_done", status.shards_done.to_json()),
                                    ("shards", status.shard_count.to_json()),
                                    ("evaluated", status.report.evaluated.to_json()),
                                    ("hedges_issued", status.hedges_issued.to_json()),
                                    ("hedge_wins", status.hedge_wins.to_json()),
                                    // Completed-shard latency quantiles: null until
                                    // the first shard of the job commits.
                                    (
                                        "latency_ns",
                                        JsonValue::object([
                                            ("samples", status.latency.samples.to_json()),
                                            ("p50", status.latency.p50_ns.to_json()),
                                            ("p95", status.latency.p95_ns.to_json()),
                                            ("max", status.latency.max_ns.to_json()),
                                        ]),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        "graph" => {
            let snapshot = service.waitgraph();
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("graph")),
                ("graph", snapshot.to_json()),
            ]))
        }
        "trace" => {
            // With a `since` cursor the read is non-destructive: the same
            // window can be re-read, and `next` is the cursor to pass for the
            // following window. Without one the ring is drained, as before.
            let drained = match request.get("since").and_then(JsonValue::as_u64) {
                Some(since) => service.read_trace_since(since),
                None => service.drain_trace(),
            };
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("trace")),
                ("dropped", drained.dropped.to_json()),
                ("next", service.trace_next_seq().to_json()),
                (
                    "events",
                    JsonValue::Array(drained.events.iter().map(ToJson::to_json).collect()),
                ),
            ]))
        }
        "metrics" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("metrics")),
            ("metrics", service.metrics_snapshot_stamped()),
        ])),
        "profile" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("profile")),
            ("profile", service.profile_snapshot()),
        ])),
        "spans" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("spans")),
            ("trace", service.chrome_trace()),
        ])),
        "health" => {
            let report = service.health();
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("health")),
                ("status", JsonValue::string(report.status())),
                ("sweeps", report.sweeps.to_json()),
                ("findings", report.findings.to_json()),
            ]))
        }
        "shutdown" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("shutdown")),
        ])),
        "watch" => Err(ExploreError::Protocol(
            "`watch` is a streaming op; drive it through `serve` (it answers \
             with multiple lines)"
                .into(),
        )),
        other => Err(ExploreError::Protocol(format!("unknown op `{other}`"))),
    }
}

/// Per-tenant aggregates over every submitted job — the `tenants` array of
/// the `jobs` op, sorted by tenant name.
fn tenant_rollups(statuses: &[JobStatus]) -> JsonValue {
    #[derive(Default)]
    struct Rollup {
        jobs: u64,
        shards_pending: u64,
        shards_leased: u64,
        shards_done: u64,
        hedges_issued: u64,
        hedge_wins: u64,
        cache_hits: u64,
    }
    let mut rollups: std::collections::BTreeMap<&str, Rollup> = std::collections::BTreeMap::new();
    for status in statuses {
        let rollup = rollups.entry(&status.tenant).or_default();
        rollup.jobs += 1;
        rollup.shards_done += status.shards_done as u64;
        rollup.shards_leased += status.shards_in_flight as u64;
        rollup.shards_pending += status
            .shard_count
            .saturating_sub(status.shards_done)
            .saturating_sub(status.shards_in_flight) as u64;
        rollup.hedges_issued += status.hedges_issued;
        rollup.hedge_wins += status.hedge_wins;
        rollup.cache_hits += u64::from(status.cache_hit);
    }
    JsonValue::Array(
        rollups
            .into_iter()
            .map(|(tenant, rollup)| {
                JsonValue::object([
                    ("tenant", JsonValue::string(tenant)),
                    ("jobs", rollup.jobs.to_json()),
                    ("shards_pending", rollup.shards_pending.to_json()),
                    ("shards_leased", rollup.shards_leased.to_json()),
                    ("shards_done", rollup.shards_done.to_json()),
                    ("hedges_issued", rollup.hedges_issued.to_json()),
                    ("hedge_wins", rollup.hedge_wins.to_json()),
                    ("cache_hits", rollup.cache_hits.to_json()),
                ])
            })
            .collect(),
    )
}

/// Writes one `watch` frame: `{"ok":true,"op":"watch","frame":kind,"seq":N,
/// ...extras}`, flushed immediately. `seq` is per-subscription and strictly
/// monotone across frame kinds — the client's ordering check.
fn write_frame<W: Write>(
    output: &mut W,
    kind: &str,
    seq: &mut u64,
    extras: Vec<(String, JsonValue)>,
) -> std::io::Result<()> {
    let mut members = vec![
        ("ok".to_string(), JsonValue::Bool(true)),
        ("op".to_string(), JsonValue::string("watch")),
        ("frame".to_string(), JsonValue::string(kind)),
        ("seq".to_string(), (*seq).to_json()),
    ];
    members.extend(extras);
    *seq += 1;
    writeln!(output, "{}", JsonValue::Object(members).to_line())?;
    output.flush()
}

/// The `watch` op: upgrades the session to a live subscription that streams
/// until the service goes **idle** (no running job, no live lease), then
/// yields a final `end` frame and hands the line loop back to [`serve`].
///
/// Frames, one JSON object per line, all carrying `ok`, `op:"watch"` and a
/// strictly monotone `seq`:
///
/// * `trace` — one scheduler decision (`event`), as it happened;
/// * `metrics` — periodic counter **deltas** since the previous metrics
///   frame (`counters`, zero-delta entries omitted), every `metrics_ms`
///   (default 500);
/// * `spans` — one completed phase span (`span`), opt-in via `"spans":true`
///   in the request; spans ride the same per-subscription `seq` and the
///   stream's bounded-queue/lagged semantics are unchanged (spans are read
///   by cursor from the recorder's rings, never queued);
/// * `lagged` — the subscriber fell behind its bounded queue and `missed`
///   events were dropped rather than blocking the scheduler; a fresh
///   `metrics` frame follows immediately as the resync point;
/// * `end` — the service is idle, the subscription is closed.
///
/// The stream opens with a **backfill**: every event still buffered in the
/// trace ring with `seq >= since` (default 0) is replayed as `trace` frames
/// before live events follow, `tail -f` style. The subscription is opened
/// *before* the backfill is read and live events already replayed are
/// deduplicated by `seq`, so the hand-off is gap-free.
///
/// Request knobs: `since` sets the backfill cursor, `queue` bounds the
/// subscription (default 1024), `spans` turns on span frames, and `slow_ms`
/// injects a per-iteration consumer delay — a test knob that makes lag
/// deterministic in CI.
fn run_watch<W: Write>(
    service: &ExplorationService,
    request: &JsonValue,
    output: &mut W,
) -> std::io::Result<()> {
    let queue = request
        .get("queue")
        .and_then(JsonValue::as_usize)
        .unwrap_or(1024)
        .max(1);
    let metrics_interval = Duration::from_millis(
        request
            .get("metrics_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(500)
            .max(1),
    );
    let slow = Duration::from_millis(
        request
            .get("slow_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
    );
    let want_spans = request
        .get("spans")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let metrics = service.metrics();
    // Subscribe before reading the backfill so nothing falls in between;
    // events present in both are deduplicated by their trace `seq` below.
    let subscription = service.subscribe_trace(queue);
    // Span frames poll the recorder's rings by completion-order cursor, so
    // they can never lag the subscription queue; the cursor starts at zero
    // and backfills every span still ringed, mirroring the trace backfill.
    let mut span_cursor = 0u64;
    let span_frames = |output: &mut W, seq: &mut u64, cursor: &mut u64| -> std::io::Result<()> {
        if !want_spans {
            return Ok(());
        }
        for span in service.spans_since(*cursor).spans {
            *cursor = span.seq + 1;
            write_frame(
                output,
                "spans",
                seq,
                vec![("span".to_string(), span.to_json())],
            )?;
        }
        Ok(())
    };
    let since = request
        .get("since")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let mut seq = 0u64;
    let mut last_traced: Option<u64> = None;
    for traced in service.read_trace_since(since).events {
        last_traced = Some(traced.seq);
        write_frame(
            output,
            "trace",
            &mut seq,
            vec![("event".to_string(), traced.to_json())],
        )?;
    }
    // Deltas start from zero, so the first metrics frame is the cumulative
    // baseline — the counter analogue of the trace backfill above.
    let mut prev = [0u64; CounterId::ALL.len()];
    let counter_deltas = |prev: &mut [u64; CounterId::ALL.len()]| {
        let deltas: Vec<(String, JsonValue)> = CounterId::ALL
            .iter()
            .enumerate()
            .filter_map(|(at, id)| {
                let now = metrics.counter(*id);
                let delta = now.saturating_sub(prev[at]);
                prev[at] = now;
                (delta > 0).then(|| (id.name().to_string(), JsonValue::Int(delta as i128)))
            })
            .collect();
        vec![("counters".to_string(), JsonValue::Object(deltas))]
    };
    let mut last_metrics = Instant::now();
    loop {
        if !slow.is_zero() {
            std::thread::sleep(slow);
        }
        let mut saw_event = false;
        if let Some(event) = subscription.next_timeout(Duration::from_millis(10)) {
            saw_event = true;
            if last_traced.is_none_or(|last| event.seq > last) {
                last_traced = Some(event.seq);
                write_frame(
                    output,
                    "trace",
                    &mut seq,
                    vec![("event".to_string(), event.to_json())],
                )?;
            }
        }
        let missed = subscription.take_lagged();
        if missed > 0 {
            write_frame(
                output,
                "lagged",
                &mut seq,
                vec![("missed".to_string(), missed.to_json())],
            )?;
        }
        if missed > 0 || last_metrics.elapsed() >= metrics_interval {
            let deltas = counter_deltas(&mut prev);
            write_frame(output, "metrics", &mut seq, deltas)?;
            last_metrics = Instant::now();
        }
        span_frames(output, &mut seq, &mut span_cursor)?;
        if !saw_event && service.is_idle() {
            // Flush whatever raced in between the last read and the idle
            // check, then close the stream.
            while let Some(event) = subscription.try_next() {
                if last_traced.is_none_or(|last| event.seq > last) {
                    last_traced = Some(event.seq);
                    write_frame(
                        output,
                        "trace",
                        &mut seq,
                        vec![("event".to_string(), event.to_json())],
                    )?;
                }
            }
            span_frames(output, &mut seq, &mut span_cursor)?;
            let deltas = counter_deltas(&mut prev);
            write_frame(output, "metrics", &mut seq, deltas)?;
            write_frame(output, "end", &mut seq, Vec::new())?;
            return Ok(());
        }
    }
}

/// Runs the ndjson loop: one request per input line, one response per output
/// line, until `shutdown` or EOF. Empty lines are skipped; parse errors
/// produce an `ok:false` response and the loop continues.
///
/// # Errors
///
/// Propagates I/O errors of the underlying streams.
pub fn serve<R: BufRead, W: Write>(
    service: &ExplorationService,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match JsonValue::parse(trimmed) {
            Ok(request) => {
                if request.get("op").and_then(JsonValue::as_str) == Some("watch") {
                    run_watch(service, &request, output)?;
                    continue;
                }
                handle_request(service, &request)
            }
            Err(error) => error_response(&ExploreError::Protocol(error.to_string())),
        };
        writeln!(output, "{}", response.to_line())?;
        output.flush()?;
        if response.get("op").and_then(JsonValue::as_str) == Some("shutdown") {
            break;
        }
    }
    Ok(())
}

/// The full `spi-explored` session: [`serve`] until shutdown or EOF, then
/// **quiesce** — in-flight leases drain to completion (their staged reports
/// commit) and the store compacts to a synced snapshot. This is what makes a
/// closed stdin a *clean* shutdown instead of an exit mid-drain: pending
/// shards stay durably pending and resume on the next start.
///
/// # Errors
///
/// Propagates I/O errors of the underlying streams; quiesce/store failures
/// are reported on `stderr` rather than failing the session (the results
/// that reached the WAL are already durable).
pub fn run_session<R: BufRead, W: Write>(
    service: &ExplorationService,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let served = serve(service, input, output);
    if let Err(error) = service.quiesce() {
        eprintln!("spi-explored: quiesce failed: {error}");
    }
    served
}

/// Parses a status line produced by [`status_to_json`] back into the counts a
/// client cares about — the round-trip proof that results survive the wire.
pub fn status_from_json(value: &JsonValue) -> Result<WireStatus> {
    let proto = |message: &str| ExploreError::Protocol(message.to_string());
    Ok(WireStatus {
        job: value
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("job missing"))?,
        state: value
            .get("state")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| proto("state missing"))?
            .to_string(),
        tenant: value
            .get("tenant")
            .and_then(JsonValue::as_str)
            .unwrap_or("default")
            .to_string(),
        cache_hit: value
            .get("cache_hit")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        combinations: value
            .get("combinations")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| proto("combinations missing"))?,
        evaluated: value
            .get("evaluated")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("evaluated missing"))?,
        feasible: value
            .get("feasible")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("feasible missing"))?,
        pruned: value
            .get("pruned")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("pruned missing"))?,
        errors: value
            .get("errors")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("errors missing"))?,
        best: match value.get("best") {
            None | Some(JsonValue::Null) => None,
            Some(best) => Some(
                crate::report::BestVariant::from_json(best)
                    .map_err(|e| ExploreError::Protocol(format!("bad best variant: {e}")))?,
            ),
        },
        top: value
            .get("top")
            .map(Vec::<crate::report::BestVariant>::from_json)
            .transpose()
            .map_err(|e| ExploreError::Protocol(format!("bad top list: {e}")))?
            .unwrap_or_default(),
    })
}

/// A client-side view of a status response; see [`status_from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireStatus {
    /// Raw job id.
    pub job: u64,
    /// Job state as its wire string (`running` / `completed` / `cancelled`).
    pub state: String,
    /// Fair-queuing tenant of the job.
    pub tenant: String,
    /// Whether the job was served from the result cache.
    pub cache_hit: bool,
    /// Variant-space size.
    pub combinations: usize,
    /// Evaluated variants.
    pub evaluated: u64,
    /// Feasible variants.
    pub feasible: u64,
    /// Pruned variants.
    pub pruned: u64,
    /// Errored variants.
    pub errors: u64,
    /// Best variant, if any.
    pub best: Option<crate::report::BestVariant>,
    /// Top-K variants.
    pub top: Vec<crate::report::BestVariant>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn run_lines(service: &ExplorationService, lines: &str) -> Vec<JsonValue> {
        let mut output = Vec::new();
        serve(service, lines.as_bytes(), &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .collect()
    }

    #[test]
    fn malformed_and_unknown_requests_answer_ok_false() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            "not json\n{\"op\":\"poll\",\"job\":99}\n{\"op\":\"nope\"}\n{\"no_op\":1}\n",
        );
        assert_eq!(responses.len(), 4);
        for response in &responses {
            assert_eq!(response.get("ok").unwrap().as_bool(), Some(false));
            assert!(response.get("error").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn submit_rejects_bad_specs_on_the_wire() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\"}\n",
                "{\"op\":\"submit\",\"system\":{}}\n",
                "{\"op\":\"submit\",\"system\":{\"scenario\":\"ghost\"}}\n",
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}},\
                 \"evaluator\":{\"kind\":\"quantum\"}}\n",
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}},\
                 \"evaluator\":{\"strategy\":\"psychic\"}}\n",
            ),
        );
        for response in &responses {
            assert_eq!(response.get("ok").unwrap().as_bool(), Some(false));
        }
    }

    #[test]
    fn jobs_op_lists_every_submitted_job() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"a\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}}}\n",
                "{\"op\":\"submit\",\"name\":\"b\",\"system\":{\"scenario\":\"figure2\"}}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"wait\",\"job\":1}\n",
                "{\"op\":\"jobs\"}\n",
            ),
        );
        let listing = responses.last().unwrap();
        assert_eq!(listing.get("ok").unwrap().as_bool(), Some(true));
        let jobs = listing.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(jobs[1].get("name").unwrap().as_str(), Some("b"));
        for job in jobs {
            assert_eq!(job.get("state").unwrap().as_str(), Some("completed"));
            // Operator observability: hedge counters and completed-shard
            // latency quantiles ride on every listing entry.
            assert!(job.get("hedges_issued").unwrap().as_u64().is_some());
            assert!(job.get("hedge_wins").unwrap().as_u64().is_some());
            let latency = job.get("latency_ns").unwrap();
            let samples = latency.get("samples").unwrap().as_u64().unwrap();
            assert!(samples >= 1, "a completed job has committed shards");
            let p50 = latency.get("p50").unwrap().as_u64().unwrap();
            let p95 = latency.get("p95").unwrap().as_u64().unwrap();
            let max = latency.get("max").unwrap().as_u64().unwrap();
            assert!(p50 <= p95 && p95 <= max);
        }
    }

    /// The two introspection ops round-trip through their `spi-model` types:
    /// the `graph` payload parses back into a validating [`GraphSnapshot`]
    /// that agrees with the job listing, and the `trace` payload parses back
    /// into [`TracedEvent`]s that replay clean through [`TraceReplay`].
    #[test]
    fn graph_and_trace_ops_round_trip_over_the_wire() {
        use spi_model::introspect::GraphSnapshot;
        use spi_store::trace::{TraceReplay, TracedEvent};

        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"traced\",\"tenant\":\"team-a\",\
                 \"system\":{\"scaling\":{\"interfaces\":4,\"clusters\":2}},\"shards\":4}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"graph\"}\n",
                "{\"op\":\"trace\"}\n",
            ),
        );
        assert_eq!(responses.len(), 4);

        let graph_response = &responses[2];
        assert_eq!(graph_response.get("ok").unwrap().as_bool(), Some(true));
        let snapshot = GraphSnapshot::from_json(graph_response.get("graph").unwrap()).unwrap();
        snapshot.validate().unwrap();
        // The job completed before the snapshot: it appears as a terminal
        // node with its tenant, waiting on nothing.
        let job_node = snapshot.node("job:0").unwrap();
        assert_eq!(job_node.kind, "job");
        assert!(job_node
            .attrs
            .iter()
            .any(|(key, value)| key == "state" && value == "completed"));
        assert!(snapshot.node("tenant:team-a").is_some());
        assert_eq!(snapshot.needs_of("job:0").count(), 0);

        let trace_response = &responses[3];
        assert_eq!(trace_response.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(trace_response.get("dropped").unwrap().as_u64(), Some(0));
        let events: Vec<TracedEvent> = trace_response
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|event| TracedEvent::from_json(event).unwrap())
            .collect();
        let report = TraceReplay::check(&events);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.committed_shards, 4);
        // A second drain hands back an empty, still-ok window.
        let responses = run_lines(&service, "{\"op\":\"trace\"}\n");
        assert_eq!(
            responses[0]
                .get("events")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    /// `trace` with a `since` cursor is non-destructive: the same window can
    /// be re-read, and the advertised `next` cursor resumes past it.
    #[test]
    fn trace_since_cursor_re_reads_without_draining() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":3,\"clusters\":2}},\
                 \"shards\":4}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"trace\",\"since\":0}\n",
                "{\"op\":\"trace\",\"since\":0}\n",
            ),
        );
        let first = &responses[2];
        let second = &responses[3];
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
        let first_events = first.get("events").unwrap().as_array().unwrap();
        let second_events = second.get("events").unwrap().as_array().unwrap();
        assert!(!first_events.is_empty());
        // Cursor reads do not consume: the identical window comes back.
        assert_eq!(first_events.len(), second_events.len());
        assert_eq!(first.get("next").unwrap().as_u64().unwrap(), {
            second.get("next").unwrap().as_u64().unwrap()
        });
        // Resuming from `next` finds nothing new on an idle service.
        let next = first.get("next").unwrap().as_u64().unwrap();
        let resumed = run_lines(
            &service,
            &format!("{{\"op\":\"trace\",\"since\":{next}}}\n"),
        );
        assert_eq!(
            resumed[0].get("events").unwrap().as_array().unwrap().len(),
            0
        );
        // And the destructive drain still works afterwards.
        let drained = run_lines(&service, "{\"op\":\"trace\"}\n{\"op\":\"trace\"}\n");
        assert!(!drained[0]
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(drained[1]
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    /// The `jobs` listing carries per-tenant rollups whose shard totals agree
    /// with the per-job entries.
    #[test]
    fn jobs_op_rolls_up_tenants() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"a1\",\"tenant\":\"team-a\",\
                 \"system\":{\"scaling\":{\"interfaces\":3,\"clusters\":2}},\"shards\":4}\n",
                "{\"op\":\"submit\",\"name\":\"a2\",\"tenant\":\"team-a\",\
                 \"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}},\"shards\":2}\n",
                "{\"op\":\"submit\",\"name\":\"b1\",\"tenant\":\"team-b\",\
                 \"system\":{\"scenario\":\"figure2\"}}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"wait\",\"job\":1}\n",
                "{\"op\":\"wait\",\"job\":2}\n",
                "{\"op\":\"jobs\"}\n",
            ),
        );
        let listing = responses.last().unwrap();
        assert_eq!(listing.get("ok").unwrap().as_bool(), Some(true));
        let tenants = listing.get("tenants").unwrap().as_array().unwrap();
        assert_eq!(tenants.len(), 2);
        // Sorted by tenant name.
        assert_eq!(tenants[0].get("tenant").unwrap().as_str(), Some("team-a"));
        assert_eq!(tenants[1].get("tenant").unwrap().as_str(), Some("team-b"));
        assert_eq!(tenants[0].get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(tenants[1].get("jobs").unwrap().as_u64(), Some(1));
        assert_eq!(tenants[0].get("shards_done").unwrap().as_u64(), Some(6));
        assert_eq!(tenants[0].get("shards_pending").unwrap().as_u64(), Some(0));
        assert_eq!(tenants[0].get("shards_leased").unwrap().as_u64(), Some(0));
        for tenant in tenants {
            assert!(tenant.get("hedges_issued").unwrap().as_u64().is_some());
            assert!(tenant.get("hedge_wins").unwrap().as_u64().is_some());
            assert!(tenant.get("cache_hits").unwrap().as_u64().is_some());
        }
    }

    /// `metrics` and `health` answer on the wire: the snapshot's counters
    /// reflect the completed job and the watchdog reports a healthy service.
    #[test]
    fn metrics_and_health_ops_round_trip() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":3,\"clusters\":2}},\
                 \"shards\":4,\"tenant\":\"team-a\"}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"metrics\"}\n",
                "{\"op\":\"health\"}\n",
            ),
        );
        let metrics = &responses[2];
        assert_eq!(metrics.get("ok").unwrap().as_bool(), Some(true));
        let snapshot = metrics.get("metrics").unwrap();
        let counters = snapshot.get("counters").unwrap();
        assert_eq!(counters.get("wfq.enqueues").unwrap().as_u64(), Some(4));
        assert_eq!(counters.get("shard.commits").unwrap().as_u64(), Some(4));
        assert_eq!(
            counters.get("eval.variants").unwrap().as_u64(),
            Some(8),
            "every variant of the 2^3 space was evaluated exactly once"
        );
        let histograms = snapshot.get("histograms").unwrap();
        let eval = histograms.get("shard.eval_ns").unwrap();
        assert_eq!(eval.get("count").unwrap().as_u64(), Some(4));
        let tenants = snapshot.get("tenants").unwrap();
        let team = tenants.get("team-a").unwrap();
        assert_eq!(team.get("service").unwrap().as_u64(), Some(4));

        let health = &responses[3];
        assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert!(health.get("sweeps").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(health.get("findings").unwrap().as_array().unwrap().len(), 0);
    }

    /// A `watch` session streams frames for a live job: strictly monotone
    /// `seq`, trace frames replaying the run, at least one metrics delta, and
    /// a clean `end` frame once the service goes idle — then the line loop
    /// resumes for ordinary requests.
    #[test]
    fn watch_streams_frames_until_idle_then_resumes_the_loop() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":4,\"clusters\":2}},\
                 \"shards\":8}\n",
                "{\"op\":\"watch\",\"metrics_ms\":20}\n",
                "{\"op\":\"poll\",\"job\":0}\n",
            ),
        );
        // submit ack, then the frames, then the post-watch poll.
        assert!(responses.len() >= 4);
        let poll = responses.last().unwrap();
        assert_eq!(poll.get("op").unwrap().as_str(), Some("poll"));
        assert_eq!(poll.get("state").unwrap().as_str(), Some("completed"));

        let frames: Vec<&JsonValue> = responses
            .iter()
            .filter(|r| r.get("op").and_then(JsonValue::as_str) == Some("watch"))
            .collect();
        assert!(frames.len() >= 2, "at least one metrics frame plus end");
        for (at, frame) in frames.iter().enumerate() {
            assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
            assert_eq!(frame.get("seq").unwrap().as_u64(), Some(at as u64));
        }
        assert_eq!(
            frames.last().unwrap().get("frame").unwrap().as_str(),
            Some("end")
        );
        let kinds: Vec<&str> = frames
            .iter()
            .map(|f| f.get("frame").unwrap().as_str().unwrap())
            .collect();
        assert!(kinds.contains(&"trace"), "job activity streamed: {kinds:?}");
        assert!(kinds.contains(&"metrics"));
        // The final pre-end metrics frame accounts for all 8 commits across
        // the deltas.
        let commits: u64 = frames
            .iter()
            .filter(|f| f.get("frame").unwrap().as_str() == Some("metrics"))
            .filter_map(|f| f.get("counters").unwrap().get("shard.commits"))
            .filter_map(JsonValue::as_u64)
            .sum();
        assert_eq!(commits, 8);
    }

    /// A deliberately slow watcher on a tiny queue observes `lagged` frames
    /// instead of stalling the scheduler, and still terminates cleanly. The
    /// job is slowed through the in-process API (a sleeping evaluator) so
    /// its events provably race the 5ms/frame consumer.
    #[test]
    fn slow_watcher_lags_without_blocking() {
        use crate::evaluator::{Evaluation, FnEvaluator};
        use crate::registry::JobSpec;
        use std::sync::Arc;

        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let system = spi_workloads::scaling_system(5, 2).expect("system builds");
        let evaluator = Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(Evaluation {
                cost: index as u64,
                feasible: true,
                detail: String::new(),
            })
        }));
        service
            .submit(
                &system,
                JobSpec {
                    name: "slow".into(),
                    shard_count: 32,
                    ..JobSpec::default()
                },
                evaluator,
            )
            .expect("submit");
        let responses = run_lines(
            &service,
            "{\"op\":\"watch\",\"queue\":1,\"slow_ms\":5,\"metrics_ms\":50}\n",
        );
        let frames: Vec<&JsonValue> = responses
            .iter()
            .filter(|r| r.get("op").and_then(JsonValue::as_str) == Some("watch"))
            .collect();
        assert_eq!(
            frames.last().unwrap().get("frame").unwrap().as_str(),
            Some("end")
        );
        for (at, frame) in frames.iter().enumerate() {
            assert_eq!(frame.get("seq").unwrap().as_u64(), Some(at as u64));
        }
        let lagged: u64 = frames
            .iter()
            .filter(|f| f.get("frame").unwrap().as_str() == Some("lagged"))
            .filter_map(|f| f.get("missed").unwrap().as_u64())
            .sum();
        assert!(
            lagged > 0,
            "a queue of 1 with a 5ms/frame consumer must drop events"
        );
    }

    /// The profiling ops round-trip through the strict parser: `profile`
    /// answers a stamped per-phase profile with folded stacks and a critical
    /// path, `spans` answers Chrome trace-event JSON whose `X` events carry
    /// valid phase names, integer pid/tid/ts/dur and waitgraph-formatted id
    /// args, and `metrics` now leads with the capture header.
    #[test]
    fn profile_and_spans_ops_round_trip() {
        use spi_store::span::PhaseId;

        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"profiled\",\"tenant\":\"team-a\",\
                 \"system\":{\"scaling\":{\"interfaces\":4,\"clusters\":2}},\"shards\":4,\
                 \"no_cache\":true}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
            ),
        );
        assert_eq!(responses.len(), 2);
        // `wait` wakes on the final shard *commit*, which lands inside the
        // drain — the enclosing drain span exits moments later. Poll until
        // every shard's drain span has been recorded.
        let deadline = Instant::now() + Duration::from_secs(5);
        let profile = loop {
            let response =
                handle_request(&service, &JsonValue::parse("{\"op\":\"profile\"}").unwrap());
            let drains = response
                .get("profile")
                .and_then(|body| body.get("phases"))
                .and_then(JsonValue::as_array)
                .into_iter()
                .flatten()
                .find(|entry| entry.get("phase").unwrap().as_str() == Some("drain_shard"))
                .and_then(|entry| entry.get("count").unwrap().as_u64())
                .unwrap_or(0);
            if drains >= 4 {
                break response;
            }
            assert!(Instant::now() < deadline, "drain spans never landed");
            std::thread::sleep(Duration::from_millis(5));
        };
        let responses = run_lines(&service, "{\"op\":\"spans\"}\n{\"op\":\"metrics\"}\n");
        assert_eq!(responses.len(), 2);

        assert_eq!(profile.get("ok").unwrap().as_bool(), Some(true));
        let body = profile.get("profile").unwrap();
        assert!(body.get("captured_unix_ms").unwrap().as_u64().unwrap() > 0);
        assert!(body.get("uptime_ns").unwrap().as_u64().is_some());
        assert_eq!(body.get("dropped").unwrap().as_u64(), Some(0));
        let phases = body.get("phases").unwrap().as_array().unwrap();
        let drain = phases
            .iter()
            .find(|entry| entry.get("phase").unwrap().as_str() == Some("drain_shard"))
            .expect("drain_shard profiled");
        // At least one drain per shard; hedged or re-leased shards may add
        // more under load, so the bound is one-sided.
        let count = drain.get("count").unwrap().as_u64().unwrap();
        assert!(count >= 4, "4 shards drained, saw {count}");
        let total = drain.get("total_ns").unwrap().as_u64().unwrap();
        let self_ns = drain.get("self_ns").unwrap().as_u64().unwrap();
        assert!(self_ns <= total && total > 0);
        assert_eq!(
            drain
                .get("duration_ns")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(count)
        );
        let folded = body.get("folded").unwrap().as_array().unwrap();
        assert!(folded
            .iter()
            .any(|line| line.as_str().unwrap().starts_with("drain_shard;")));
        let paths = body.get("critical_paths").unwrap().as_array().unwrap();
        assert_eq!(paths.len(), 1, "one completed job, one critical path");
        let path = &paths[0];
        assert!(path.get("wall_ns").unwrap().as_u64().unwrap() > 0);
        assert!(!path.get("steps").unwrap().as_array().unwrap().is_empty());
        assert!(path.get("straggler").unwrap().get("lease").is_some());

        let spans_response = &responses[0];
        assert_eq!(spans_response.get("ok").unwrap().as_bool(), Some(true));
        let trace = spans_response.get("trace").unwrap();
        assert_eq!(trace.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        let mut complete_events = 0usize;
        for event in events {
            match event.get("ph").unwrap().as_str().unwrap() {
                "M" => {
                    assert!(event.get("name").unwrap().as_str().is_some());
                    assert!(event.get("pid").unwrap().as_u64().is_some());
                }
                "X" => {
                    complete_events += 1;
                    let name = event.get("name").unwrap().as_str().unwrap();
                    assert!(PhaseId::from_name(name).is_some(), "phase `{name}`");
                    assert!(event.get("pid").unwrap().as_u64().is_some());
                    assert!(event.get("tid").unwrap().as_u64().is_some());
                    assert!(event.get("ts").unwrap().as_u64().is_some());
                    assert!(event.get("dur").unwrap().as_u64().is_some());
                    let args = event.get("args").unwrap();
                    if let Some(job) = args.get("job").and_then(JsonValue::as_str) {
                        assert!(job.starts_with("job:"), "waitgraph id format: {job}");
                    }
                    if let Some(lease) = args.get("lease").and_then(JsonValue::as_str) {
                        assert!(lease.starts_with("lease:"));
                    }
                }
                other => panic!("unexpected event kind `{other}`"),
            }
        }
        assert!(complete_events >= 4, "at least one span per shard");

        let metrics = responses[1].get("metrics").unwrap();
        assert!(metrics.get("captured_unix_ms").unwrap().as_u64().unwrap() > 0);
        assert!(metrics.get("uptime_ns").unwrap().as_u64().is_some());
        assert!(metrics.get("counters").is_some(), "snapshot body intact");
    }

    /// `"spans":true` upgrades a watch session with span frames: completed
    /// spans stream under the same strictly monotone per-subscription `seq`,
    /// and sessions without the opt-in never see the frame kind.
    #[test]
    fn watch_streams_span_frames_when_opted_in() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":4,\"clusters\":2}},\
                 \"shards\":8}\n",
                "{\"op\":\"watch\",\"metrics_ms\":20,\"spans\":true}\n",
                "{\"op\":\"watch\",\"metrics_ms\":20}\n",
            ),
        );
        let frames: Vec<&JsonValue> = responses
            .iter()
            .filter(|r| r.get("op").and_then(JsonValue::as_str) == Some("watch"))
            .collect();
        // Both watch sessions restart seq at 0; split at the second zero.
        let second_start = frames
            .iter()
            .skip(1)
            .position(|frame| frame.get("seq").unwrap().as_u64() == Some(0))
            .unwrap()
            + 1;
        let (with_spans, without) = frames.split_at(second_start);
        for (at, frame) in with_spans.iter().enumerate() {
            assert_eq!(frame.get("seq").unwrap().as_u64(), Some(at as u64));
        }
        let span_frames: Vec<&&JsonValue> = with_spans
            .iter()
            .filter(|f| f.get("frame").unwrap().as_str() == Some("spans"))
            .collect();
        // ≥1, not ≥shards: the last drain span exits moments *after* the
        // commit that makes the service idle, so the closing flush may
        // legitimately miss it — the client resumes from its span `seq`.
        assert!(!span_frames.is_empty(), "spans streamed: {span_frames:?}");
        // Span payloads carry their recorder seq (strictly increasing across
        // frames — the client's resume cursor) and full attribution.
        let mut last_span_seq = None;
        for frame in &span_frames {
            let span = frame.get("span").unwrap();
            let seq = span.get("seq").unwrap().as_u64().unwrap();
            assert!(last_span_seq.is_none_or(|last| seq > last));
            last_span_seq = Some(seq);
            assert!(span.get("phase").unwrap().as_str().is_some());
            assert!(span.get("end_ns").unwrap().as_u64() >= span.get("start_ns").unwrap().as_u64());
        }
        assert!(
            without
                .iter()
                .all(|f| f.get("frame").unwrap().as_str() != Some("spans")),
            "span frames are opt-in"
        );
    }

    #[test]
    fn empty_lines_are_skipped_and_shutdown_ends_the_loop() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            "\n   \n{\"op\":\"shutdown\"}\n{\"op\":\"poll\",\"job\":0}\n",
        );
        // Only the shutdown got an answer; the request after it was never read.
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].get("op").unwrap().as_str(), Some("shutdown"));
    }
}
