//! The ndjson wire protocol of `spi-explored`.
//!
//! One JSON object per line in, one JSON object per line out — a protocol a
//! shell script, a CI step or another service can drive over stdin/stdout.
//! Requests name an `"op"`; responses echo the op and carry `"ok"`:
//!
//! ```text
//! → {"op":"submit","system":{"scaling":{"interfaces":5,"clusters":2}},"shards":8,"top_k":4}
//! ← {"ok":true,"op":"submit","job":0,"combinations":32,"shards":8}
//! → {"op":"wait","job":0}
//! ← {"ok":true,"op":"wait","job":0,"state":"completed","evaluated":32,...,"best":{...},"top":[...]}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```
//!
//! Ops: `submit`, `poll`, `wait`, `top`, `jobs`, `cancel`, `graph`, `trace`,
//! `shutdown`.
//! `submit` also takes `tenant` (fair-queuing bucket), `weight` (its WFQ
//! share) and `no_cache` (bypass the result cache); responses carry
//! `cache_hit` so a client can tell a served-from-cache job (`evaluated` is
//! then 0 and `top` is the cached optimum). Malformed requests answer
//! `{"ok":false,"error":...}` and the stream continues; only `shutdown` (or
//! EOF) ends [`serve`] — [`run_session`] then quiesces the service, so a
//! closed stdin is a clean shutdown (in-flight shards commit, the store
//! compacts), not an exit mid-drain.
//!
//! Systems are specified by **construction recipe** — `{"scaling":
//! {"interfaces":k,"clusters":m}}`, a full `{"synthetic":{...}}` parameter
//! set, or a named `{"scenario":"tv"|"automotive"|"figure2"}` — rather than
//! as a serialized graph: recipes are a few bytes, deterministic, and the
//! generators already live in `spi-workloads` on both sides. Results travel
//! back with every symbol resolved to its string (see `spi_model::json`), so
//! a receiving process can re-intern and keep computing.

use std::io::{BufRead, Write};
use std::sync::Arc;

use spi_model::json::{FromJson, JsonValue, ToJson};
use spi_synth::{FeasibilityMode, SearchStrategy, TaskParams};
use spi_variants::VariantSystem;
use spi_workloads::{automotive_system, figure2_system, synthetic_system, SyntheticParams};

use crate::error::ExploreError;
use crate::evaluator::{Evaluator, PartitionEvaluator, TaskParamsSpec};
use crate::registry::{JobId, JobSpec, JobStatus};
use crate::service::ExplorationService;
use crate::Result;

/// Renders a status snapshot as the wire object shared by `poll`, `wait` and
/// `cancel` responses.
pub fn status_to_json(op: &str, status: &JobStatus) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::Bool(true)),
        ("op", JsonValue::string(op)),
        ("job", status.job.raw().to_json()),
        ("name", status.name.to_json()),
        ("tenant", status.tenant.to_json()),
        ("cache_hit", JsonValue::Bool(status.cache_hit)),
        ("hedges_issued", status.hedges_issued.to_json()),
        ("hedge_wins", status.hedge_wins.to_json()),
        ("state", JsonValue::string(status.state.to_string())),
        ("combinations", status.combinations.to_json()),
        ("shards", status.shard_count.to_json()),
        ("shards_done", status.shards_done.to_json()),
        ("shards_in_flight", status.shards_in_flight.to_json()),
        ("evaluated", status.report.evaluated.to_json()),
        ("feasible", status.report.feasible.to_json()),
        ("pruned", status.report.pruned.to_json()),
        ("errors", status.report.errors.to_json()),
        ("eval_ns", JsonValue::Int(status.report.eval_ns as i128)),
        (
            "best",
            status
                .best()
                .map(ToJson::to_json)
                .unwrap_or(JsonValue::Null),
        ),
        ("top", status.report.top.to_json()),
    ])
}

fn error_response(error: &ExploreError) -> JsonValue {
    JsonValue::object([
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::string(error.to_string())),
    ])
}

fn parse_system(value: &JsonValue) -> Result<VariantSystem> {
    if let Some(scaling) = value.get("scaling") {
        let interfaces = scaling
            .get("interfaces")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| ExploreError::Protocol("scaling.interfaces required".into()))?;
        let clusters = scaling
            .get("clusters")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| ExploreError::Protocol("scaling.clusters required".into()))?;
        return Ok(spi_workloads::scaling_system(interfaces, clusters)?);
    }
    if let Some(synthetic) = value.get("synthetic") {
        let field = |name: &str, default: usize| {
            synthetic
                .get(name)
                .and_then(JsonValue::as_usize)
                .unwrap_or(default)
        };
        let params = SyntheticParams {
            common_tasks: field("common_tasks", 4),
            interfaces: field("interfaces", 2),
            clusters_per_interface: field("clusters_per_interface", 3),
            cluster_depth: field("cluster_depth", 2),
            seed: synthetic
                .get("seed")
                .and_then(JsonValue::as_u64)
                .unwrap_or(42),
        };
        return Ok(synthetic_system(&params)?);
    }
    if let Some(scenario) = value.get("scenario").and_then(JsonValue::as_str) {
        return match scenario {
            "tv" => Ok(spi_workloads::tv_system()?),
            "automotive" => Ok(automotive_system()?),
            "figure2" => Ok(figure2_system()?),
            other => Err(ExploreError::Protocol(format!(
                "unknown scenario `{other}` (expected tv | automotive | figure2)"
            ))),
        };
    }
    Err(ExploreError::Protocol(
        "system must specify `scaling`, `synthetic` or `scenario`".into(),
    ))
}

fn parse_evaluator(value: Option<&JsonValue>) -> Result<Arc<dyn Evaluator>> {
    let mut evaluator = PartitionEvaluator::default();
    let Some(value) = value else {
        return Ok(Arc::new(evaluator));
    };
    if let Some(kind) = value.get("kind").and_then(JsonValue::as_str) {
        if kind != "partition" {
            return Err(ExploreError::Protocol(format!(
                "unknown evaluator kind `{kind}` (only `partition` speaks ndjson)"
            )));
        }
    }
    if let Some(cost) = value.get("processor_cost").and_then(JsonValue::as_u64) {
        evaluator.processor_cost = cost;
    }
    if let Some(strategy) = value.get("strategy").and_then(JsonValue::as_str) {
        evaluator.strategy = match strategy {
            "auto" => SearchStrategy::Auto,
            "exhaustive" => SearchStrategy::Exhaustive,
            "branch_and_bound" => SearchStrategy::BranchAndBound,
            "greedy" => SearchStrategy::Greedy,
            other => {
                return Err(ExploreError::Protocol(format!(
                    "unknown strategy `{other}`"
                )))
            }
        };
    }
    if let Some(mode) = value.get("mode").and_then(JsonValue::as_str) {
        evaluator.mode = match mode {
            "per_application" => FeasibilityMode::PerApplication,
            "serialized" => FeasibilityMode::Serialized,
            other => return Err(ExploreError::Protocol(format!("unknown mode `{other}`"))),
        };
    }
    if let Some(params) = value.get("params") {
        evaluator.params = parse_params(params)?;
    }
    Ok(Arc::new(evaluator))
}

fn parse_params(value: &JsonValue) -> Result<TaskParamsSpec> {
    match value.get("kind").and_then(JsonValue::as_str) {
        Some("hashed") | None => Ok(TaskParamsSpec::Hashed {
            seed: value.get("seed").and_then(JsonValue::as_u64).unwrap_or(42),
        }),
        Some("uniform") => {
            let field = |name: &str, default: u64| {
                value
                    .get(name)
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(default)
            };
            Ok(TaskParamsSpec::Uniform(TaskParams {
                sw_time: field("sw_time", 10),
                period: field("period", 100),
                hw_area: field("hw_area", 20),
                synthesis_effort: field("synthesis_effort", 5),
            }))
        }
        Some(other) => Err(ExploreError::Protocol(format!(
            "unknown params kind `{other}`"
        ))),
    }
}

/// Rebuilds the `(system, evaluator)` of a stored submission recipe —
/// `{"system": ..., "evaluator": ...}` as recorded by the `submit` op — using
/// the same parsers the live wire uses. This is the [`RebuildFn`] the service
/// hands to [`JobRegistry::restore`](crate::JobRegistry::restore) at startup.
///
/// # Errors
///
/// [`ExploreError::Protocol`] for unknown recipes, plus any construction
/// error from the workloads layer.
///
/// [`RebuildFn`]: crate::registry::RebuildFn
pub fn rebuild_from_recipe(
    recipe: &JsonValue,
) -> Result<(spi_variants::VariantSystem, Arc<dyn Evaluator>)> {
    let system = parse_system(
        recipe
            .get("system")
            .ok_or_else(|| ExploreError::Protocol("recipe missing `system`".into()))?,
    )?;
    let evaluator = parse_evaluator(recipe.get("evaluator"))?;
    Ok((system, evaluator))
}

fn job_of(request: &JsonValue) -> Result<JobId> {
    request
        .get("job")
        .and_then(JsonValue::as_u64)
        .map(JobId::from_raw)
        .ok_or_else(|| ExploreError::Protocol("`job` id required".into()))
}

/// Handles one request object against the service; the building block of
/// [`serve`] and directly callable from tests.
pub fn handle_request(service: &ExplorationService, request: &JsonValue) -> JsonValue {
    match dispatch(service, request) {
        Ok(response) => response,
        Err(error) => error_response(&error),
    }
}

fn dispatch(service: &ExplorationService, request: &JsonValue) -> Result<JsonValue> {
    let op = request
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ExploreError::Protocol("`op` required".into()))?;
    match op {
        "submit" => {
            let system_value = request
                .get("system")
                .ok_or_else(|| ExploreError::Protocol("`system` required".into()))?;
            let system = parse_system(system_value)?;
            let evaluator = parse_evaluator(request.get("evaluator"))?;
            let spec = JobSpec {
                name: request
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("ndjson")
                    .to_string(),
                shard_count: request
                    .get("shards")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or_else(|| JobSpec::default().shard_count),
                top_k: request
                    .get("top_k")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or_else(|| JobSpec::default().top_k),
                tenant: request
                    .get("tenant")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("default")
                    .to_string(),
                weight: request
                    .get("weight")
                    .and_then(JsonValue::as_u64)
                    .and_then(|weight| u32::try_from(weight).ok())
                    .unwrap_or(1)
                    .max(1),
                use_cache: !request
                    .get("no_cache")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            };
            // The recipe makes the job durable (replayable after a restart)
            // and content-addressable (cacheable): it is exactly the request's
            // own construction description, echoed into the store.
            let mut recipe = vec![("system".to_string(), system_value.clone())];
            if let Some(evaluator_value) = request.get("evaluator") {
                recipe.push(("evaluator".to_string(), evaluator_value.clone()));
            }
            let job = service.submit_with_recipe(
                &system,
                spec,
                evaluator,
                Some(JsonValue::Object(recipe)),
            )?;
            let status = service.poll(job)?;
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("submit")),
                ("job", job.raw().to_json()),
                ("combinations", status.combinations.to_json()),
                ("shards", status.shard_count.to_json()),
                ("cache_hit", JsonValue::Bool(status.cache_hit)),
                ("state", JsonValue::string(status.state.to_string())),
            ]))
        }
        "poll" => Ok(status_to_json("poll", &service.poll(job_of(request)?)?)),
        "wait" => Ok(status_to_json("wait", &service.wait(job_of(request)?)?)),
        "cancel" => Ok(status_to_json("cancel", &service.cancel(job_of(request)?)?)),
        "top" => {
            let status = service.poll(job_of(request)?)?;
            let k = request
                .get("k")
                .and_then(JsonValue::as_usize)
                .unwrap_or(status.report.top.len());
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("top")),
                ("job", status.job.raw().to_json()),
                (
                    "top",
                    status.report.top[..k.min(status.report.top.len())]
                        .to_vec()
                        .to_json(),
                ),
            ]))
        }
        "jobs" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("jobs")),
            ("cache", {
                let (entries, hits, misses) = service.cache_stats();
                JsonValue::object([
                    ("entries", entries.to_json()),
                    ("hits", hits.to_json()),
                    ("misses", misses.to_json()),
                ])
            }),
            (
                "jobs",
                JsonValue::Array(
                    service
                        .jobs()
                        .iter()
                        .map(|status| {
                            JsonValue::object([
                                ("job", status.job.raw().to_json()),
                                ("name", status.name.to_json()),
                                ("state", JsonValue::string(status.state.to_string())),
                                ("shards_done", status.shards_done.to_json()),
                                ("shards", status.shard_count.to_json()),
                                ("evaluated", status.report.evaluated.to_json()),
                                ("hedges_issued", status.hedges_issued.to_json()),
                                ("hedge_wins", status.hedge_wins.to_json()),
                                // Completed-shard latency quantiles: null until
                                // the first shard of the job commits.
                                (
                                    "latency_ns",
                                    JsonValue::object([
                                        ("samples", status.latency.samples.to_json()),
                                        ("p50", status.latency.p50_ns.to_json()),
                                        ("p95", status.latency.p95_ns.to_json()),
                                        ("max", status.latency.max_ns.to_json()),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])),
        "graph" => {
            let snapshot = service.waitgraph();
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("graph")),
                ("graph", snapshot.to_json()),
            ]))
        }
        "trace" => {
            let drained = service.drain_trace();
            Ok(JsonValue::object([
                ("ok", JsonValue::Bool(true)),
                ("op", JsonValue::string("trace")),
                ("dropped", drained.dropped.to_json()),
                (
                    "events",
                    JsonValue::Array(drained.events.iter().map(ToJson::to_json).collect()),
                ),
            ]))
        }
        "shutdown" => Ok(JsonValue::object([
            ("ok", JsonValue::Bool(true)),
            ("op", JsonValue::string("shutdown")),
        ])),
        other => Err(ExploreError::Protocol(format!("unknown op `{other}`"))),
    }
}

/// Runs the ndjson loop: one request per input line, one response per output
/// line, until `shutdown` or EOF. Empty lines are skipped; parse errors
/// produce an `ok:false` response and the loop continues.
///
/// # Errors
///
/// Propagates I/O errors of the underlying streams.
pub fn serve<R: BufRead, W: Write>(
    service: &ExplorationService,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match JsonValue::parse(trimmed) {
            Ok(request) => handle_request(service, &request),
            Err(error) => error_response(&ExploreError::Protocol(error.to_string())),
        };
        writeln!(output, "{}", response.to_line())?;
        output.flush()?;
        if response.get("op").and_then(JsonValue::as_str) == Some("shutdown") {
            break;
        }
    }
    Ok(())
}

/// The full `spi-explored` session: [`serve`] until shutdown or EOF, then
/// **quiesce** — in-flight leases drain to completion (their staged reports
/// commit) and the store compacts to a synced snapshot. This is what makes a
/// closed stdin a *clean* shutdown instead of an exit mid-drain: pending
/// shards stay durably pending and resume on the next start.
///
/// # Errors
///
/// Propagates I/O errors of the underlying streams; quiesce/store failures
/// are reported on `stderr` rather than failing the session (the results
/// that reached the WAL are already durable).
pub fn run_session<R: BufRead, W: Write>(
    service: &ExplorationService,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let served = serve(service, input, output);
    if let Err(error) = service.quiesce() {
        eprintln!("spi-explored: quiesce failed: {error}");
    }
    served
}

/// Parses a status line produced by [`status_to_json`] back into the counts a
/// client cares about — the round-trip proof that results survive the wire.
pub fn status_from_json(value: &JsonValue) -> Result<WireStatus> {
    let proto = |message: &str| ExploreError::Protocol(message.to_string());
    Ok(WireStatus {
        job: value
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("job missing"))?,
        state: value
            .get("state")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| proto("state missing"))?
            .to_string(),
        tenant: value
            .get("tenant")
            .and_then(JsonValue::as_str)
            .unwrap_or("default")
            .to_string(),
        cache_hit: value
            .get("cache_hit")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        combinations: value
            .get("combinations")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| proto("combinations missing"))?,
        evaluated: value
            .get("evaluated")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("evaluated missing"))?,
        feasible: value
            .get("feasible")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("feasible missing"))?,
        pruned: value
            .get("pruned")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("pruned missing"))?,
        errors: value
            .get("errors")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("errors missing"))?,
        best: match value.get("best") {
            None | Some(JsonValue::Null) => None,
            Some(best) => Some(
                crate::report::BestVariant::from_json(best)
                    .map_err(|e| ExploreError::Protocol(format!("bad best variant: {e}")))?,
            ),
        },
        top: value
            .get("top")
            .map(Vec::<crate::report::BestVariant>::from_json)
            .transpose()
            .map_err(|e| ExploreError::Protocol(format!("bad top list: {e}")))?
            .unwrap_or_default(),
    })
}

/// A client-side view of a status response; see [`status_from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireStatus {
    /// Raw job id.
    pub job: u64,
    /// Job state as its wire string (`running` / `completed` / `cancelled`).
    pub state: String,
    /// Fair-queuing tenant of the job.
    pub tenant: String,
    /// Whether the job was served from the result cache.
    pub cache_hit: bool,
    /// Variant-space size.
    pub combinations: usize,
    /// Evaluated variants.
    pub evaluated: u64,
    /// Feasible variants.
    pub feasible: u64,
    /// Pruned variants.
    pub pruned: u64,
    /// Errored variants.
    pub errors: u64,
    /// Best variant, if any.
    pub best: Option<crate::report::BestVariant>,
    /// Top-K variants.
    pub top: Vec<crate::report::BestVariant>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn run_lines(service: &ExplorationService, lines: &str) -> Vec<JsonValue> {
        let mut output = Vec::new();
        serve(service, lines.as_bytes(), &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .collect()
    }

    #[test]
    fn malformed_and_unknown_requests_answer_ok_false() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            "not json\n{\"op\":\"poll\",\"job\":99}\n{\"op\":\"nope\"}\n{\"no_op\":1}\n",
        );
        assert_eq!(responses.len(), 4);
        for response in &responses {
            assert_eq!(response.get("ok").unwrap().as_bool(), Some(false));
            assert!(response.get("error").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn submit_rejects_bad_specs_on_the_wire() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\"}\n",
                "{\"op\":\"submit\",\"system\":{}}\n",
                "{\"op\":\"submit\",\"system\":{\"scenario\":\"ghost\"}}\n",
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}},\
                 \"evaluator\":{\"kind\":\"quantum\"}}\n",
                "{\"op\":\"submit\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}},\
                 \"evaluator\":{\"strategy\":\"psychic\"}}\n",
            ),
        );
        for response in &responses {
            assert_eq!(response.get("ok").unwrap().as_bool(), Some(false));
        }
    }

    #[test]
    fn jobs_op_lists_every_submitted_job() {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"a\",\"system\":{\"scaling\":{\"interfaces\":2,\"clusters\":2}}}\n",
                "{\"op\":\"submit\",\"name\":\"b\",\"system\":{\"scenario\":\"figure2\"}}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"wait\",\"job\":1}\n",
                "{\"op\":\"jobs\"}\n",
            ),
        );
        let listing = responses.last().unwrap();
        assert_eq!(listing.get("ok").unwrap().as_bool(), Some(true));
        let jobs = listing.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(jobs[1].get("name").unwrap().as_str(), Some("b"));
        for job in jobs {
            assert_eq!(job.get("state").unwrap().as_str(), Some("completed"));
            // Operator observability: hedge counters and completed-shard
            // latency quantiles ride on every listing entry.
            assert!(job.get("hedges_issued").unwrap().as_u64().is_some());
            assert!(job.get("hedge_wins").unwrap().as_u64().is_some());
            let latency = job.get("latency_ns").unwrap();
            let samples = latency.get("samples").unwrap().as_u64().unwrap();
            assert!(samples >= 1, "a completed job has committed shards");
            let p50 = latency.get("p50").unwrap().as_u64().unwrap();
            let p95 = latency.get("p95").unwrap().as_u64().unwrap();
            let max = latency.get("max").unwrap().as_u64().unwrap();
            assert!(p50 <= p95 && p95 <= max);
        }
    }

    /// The two introspection ops round-trip through their `spi-model` types:
    /// the `graph` payload parses back into a validating [`GraphSnapshot`]
    /// that agrees with the job listing, and the `trace` payload parses back
    /// into [`TracedEvent`]s that replay clean through [`TraceReplay`].
    #[test]
    fn graph_and_trace_ops_round_trip_over_the_wire() {
        use spi_model::introspect::GraphSnapshot;
        use spi_store::trace::{TraceReplay, TracedEvent};

        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let responses = run_lines(
            &service,
            concat!(
                "{\"op\":\"submit\",\"name\":\"traced\",\"tenant\":\"team-a\",\
                 \"system\":{\"scaling\":{\"interfaces\":4,\"clusters\":2}},\"shards\":4}\n",
                "{\"op\":\"wait\",\"job\":0}\n",
                "{\"op\":\"graph\"}\n",
                "{\"op\":\"trace\"}\n",
            ),
        );
        assert_eq!(responses.len(), 4);

        let graph_response = &responses[2];
        assert_eq!(graph_response.get("ok").unwrap().as_bool(), Some(true));
        let snapshot = GraphSnapshot::from_json(graph_response.get("graph").unwrap()).unwrap();
        snapshot.validate().unwrap();
        // The job completed before the snapshot: it appears as a terminal
        // node with its tenant, waiting on nothing.
        let job_node = snapshot.node("job:0").unwrap();
        assert_eq!(job_node.kind, "job");
        assert!(job_node
            .attrs
            .iter()
            .any(|(key, value)| key == "state" && value == "completed"));
        assert!(snapshot.node("tenant:team-a").is_some());
        assert_eq!(snapshot.needs_of("job:0").count(), 0);

        let trace_response = &responses[3];
        assert_eq!(trace_response.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(trace_response.get("dropped").unwrap().as_u64(), Some(0));
        let events: Vec<TracedEvent> = trace_response
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|event| TracedEvent::from_json(event).unwrap())
            .collect();
        let report = TraceReplay::check(&events);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.committed_shards, 4);
        // A second drain hands back an empty, still-ok window.
        let responses = run_lines(&service, "{\"op\":\"trace\"}\n");
        assert_eq!(
            responses[0]
                .get("events")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn empty_lines_are_skipped_and_shutdown_ends_the_loop() {
        let service = ExplorationService::start(ServiceConfig::with_workers(1));
        let responses = run_lines(
            &service,
            "\n   \n{\"op\":\"shutdown\"}\n{\"op\":\"poll\",\"job\":0}\n",
        );
        // Only the shutdown got an answer; the request after it was never read.
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].get("op").unwrap().as_str(), Some("shutdown"));
    }
}
