//! Error type shared by all operations of the SPI model crate.

use std::fmt;

use crate::ids::{ChannelId, ModeId, ProcessId};

/// Error raised by model construction, validation and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An interval was constructed with a lower bound greater than the upper bound.
    InvalidInterval {
        /// Offending lower bound.
        lo: u64,
        /// Offending upper bound.
        hi: u64,
    },
    /// A referenced process does not exist in the graph.
    UnknownProcess(ProcessId),
    /// A referenced channel does not exist in the graph.
    UnknownChannel(ChannelId),
    /// A referenced mode does not exist on the given process.
    UnknownMode(ProcessId, ModeId),
    /// A channel already has a writer attached; channels are point-to-point.
    ChannelHasWriter(ChannelId),
    /// A channel already has a reader attached; channels are point-to-point.
    ChannelHasReader(ChannelId),
    /// An edge would connect two processes or two channels directly, violating bipartiteness.
    NotBipartite,
    /// A duplicate name was used where names must be unique.
    DuplicateName(String),
    /// A process declares a rate on a channel that is not connected to it.
    RateOnUnconnectedChannel {
        /// Process declaring the rate.
        process: ProcessId,
        /// Channel the rate refers to.
        channel: ChannelId,
    },
    /// An activation rule references a channel that is not an input of its process.
    ActivationOnNonInput {
        /// Process owning the activation function.
        process: ProcessId,
        /// Channel referenced by the predicate.
        channel: ChannelId,
    },
    /// A process has an empty mode set but mode-dependent information was requested.
    NoModes(ProcessId),
    /// The graph contains a cycle but the requested analysis requires an acyclic graph.
    CyclicGraph,
    /// A register channel was given a capacity other than one.
    RegisterCapacity(ChannelId),
    /// Generic validation failure with a human-readable explanation.
    Validation(String),
    /// A slab-storage precondition was violated (tombstoned guest in an
    /// offset-shift merge, foreign watermark, an edge left dangling across a
    /// truncation). These indicate a caller bug, but release builds must
    /// refuse loudly instead of corrupting the slabs silently — the delta
    /// flattener treats this error as "rebuild from the skeleton".
    SlabIntegrity(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidInterval { lo, hi } => {
                write!(
                    f,
                    "invalid interval: lower bound {lo} exceeds upper bound {hi}"
                )
            }
            ModelError::UnknownProcess(id) => write!(f, "unknown process {id}"),
            ModelError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            ModelError::UnknownMode(p, m) => write!(f, "unknown mode {m} on process {p}"),
            ModelError::ChannelHasWriter(id) => {
                write!(f, "channel {id} already has a writer attached")
            }
            ModelError::ChannelHasReader(id) => {
                write!(f, "channel {id} already has a reader attached")
            }
            ModelError::NotBipartite => {
                write!(
                    f,
                    "edge would violate bipartiteness of the process/channel graph"
                )
            }
            ModelError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
            ModelError::RateOnUnconnectedChannel { process, channel } => write!(
                f,
                "process {process} declares a rate on channel {channel} it is not connected to"
            ),
            ModelError::ActivationOnNonInput { process, channel } => write!(
                f,
                "activation rule of process {process} references non-input channel {channel}"
            ),
            ModelError::NoModes(id) => write!(f, "process {id} has no modes"),
            ModelError::CyclicGraph => write!(f, "graph is cyclic; analysis requires a DAG"),
            ModelError::RegisterCapacity(id) => {
                write!(f, "register channel {id} must have capacity one")
            }
            ModelError::Validation(msg) => write!(f, "validation failed: {msg}"),
            ModelError::SlabIntegrity(msg) => write!(f, "slab integrity violated: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = ModelError::InvalidInterval { lo: 5, hi: 3 };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('3'));
        assert!(msg.starts_with("invalid interval"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn unknown_process_mentions_id() {
        let err = ModelError::UnknownProcess(ProcessId::new(7));
        assert!(err.to_string().contains("P7"));
    }
}
