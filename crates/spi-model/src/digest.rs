//! Stable content digests over the deterministic JSON writer.
//!
//! The exploration store caches results under a **content address**: a digest
//! of the canonical JSON form of whatever identifies the computation (the
//! system recipe, the variant space, the evaluator spec). Two requirements
//! follow:
//!
//! * **Stability across processes and runs** — the digest is part of the
//!   on-disk cache format, so it must not depend on interner indices, hash
//!   seeds (`std`'s `DefaultHasher` is randomized) or pointer identity. The
//!   hasher here is a fixed-constant FNV-1a over 128 bits: tiny, dependency
//!   free, byte-for-byte reproducible everywhere.
//! * **Canonical input** — callers digest the [`JsonValue::to_line`] bytes of
//!   a value they construct with a fixed member order (the workspace's
//!   `ToJson` impls already write members in a deterministic order). The
//!   digest is a function of that canonical byte string, nothing else.
//!
//! This is a *content address*, not a cryptographic commitment: FNV is not
//! collision resistant against adversaries. The cache is a private
//! performance structure, so accidental-collision odds (~2^-64 at realistic
//! cache sizes, by birthday bound on 128 bits) are the relevant measure.

use std::fmt;

use crate::json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};

/// A 128-bit content digest; displayed and serialized as 32 hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// Parses the 32-hex-character form produced by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// [`JsonError`] when `text` is not exactly 32 hex characters.
    pub fn parse(text: &str) -> JsonResult<Digest> {
        if text.len() != 32 {
            return Err(JsonError::new("digest must be 32 hex characters"));
        }
        u128::from_str_radix(text, 16)
            .map(Digest)
            .map_err(|_| JsonError::new("digest must be 32 hex characters"))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl ToJson for Digest {
    fn to_json(&self) -> JsonValue {
        JsonValue::string(self.to_string())
    }
}

impl FromJson for Digest {
    fn from_json(value: &JsonValue) -> JsonResult<Digest> {
        value
            .as_str()
            .ok_or_else(|| JsonError::new("expected a digest string"))
            .and_then(Digest::parse)
    }
}

/// Incremental 128-bit FNV-1a hasher with the standard offset/prime constants.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Hasher {
    /// Creates a hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Hasher {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// Digest of a byte string.
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut hasher = Hasher::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Digest of a JSON value's canonical single-line form.
///
/// Canonical means: the exact bytes [`JsonValue::to_line`] writes. Object
/// member order is significant — build the value with a fixed field order
/// (as every `ToJson` impl in this workspace does) before digesting.
pub fn digest_json(value: &JsonValue) -> Digest {
    digest_bytes(value.to_line().as_bytes())
}

impl JsonValue {
    /// The content digest of this value's canonical form; see [`digest_json`].
    pub fn digest(&self) -> Digest {
        digest_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors_hold() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(digest_bytes(b"").0, FNV128_OFFSET);
        // One byte moves the state; different bytes move it differently.
        assert_ne!(digest_bytes(b"a"), digest_bytes(b""));
        assert_ne!(digest_bytes(b"a"), digest_bytes(b"b"));
        assert_eq!(digest_bytes(b"abc"), digest_bytes(b"abc"));
    }

    #[test]
    fn incremental_and_oneshot_agree() {
        let mut hasher = Hasher::new();
        hasher.update(b"hello ");
        hasher.update(b"world");
        assert_eq!(hasher.finish(), digest_bytes(b"hello world"));
    }

    #[test]
    fn json_digest_tracks_canonical_bytes() {
        let a = JsonValue::object([("x", JsonValue::Int(1)), ("y", JsonValue::Int(2))]);
        let b = JsonValue::parse(r#"{"x":1,"y":2}"#).unwrap();
        assert_eq!(a.digest(), b.digest());
        // Member order is part of the canonical form.
        let swapped = JsonValue::object([("y", JsonValue::Int(2)), ("x", JsonValue::Int(1))]);
        assert_ne!(a.digest(), swapped.digest());
    }

    #[test]
    fn digest_round_trips_as_hex() {
        let digest = digest_bytes(b"spi-store");
        let text = digest.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(Digest::parse(&text).unwrap(), digest);
        assert_eq!(Digest::from_json(&digest.to_json()).unwrap(), digest);
        assert!(Digest::parse("xyz").is_err());
        assert!(Digest::parse(&"0".repeat(31)).is_err());
        assert!(Digest::from_json(&JsonValue::Int(1)).is_err());
    }
}
