//! Virtual mode tags.
//!
//! In SPI, communicated data is abstracted to its amount only. To let a receiving process
//! adapt its behaviour to the *content* of data, the sending process may attach **virtual
//! mode tags** to produced tokens. Activation rules and cluster-selection rules predicate
//! on the tag set of the first visible token of a channel.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An interned, cheaply clonable tag name such as `"a"`, `"V1"` or `"suspend"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tag(Arc<str>);

impl Tag {
    /// Creates a tag from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Tag(Arc::from(name.as_ref()))
    }

    /// Returns the tag name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.0)
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Self {
        Tag::new(s)
    }
}

impl From<String> for Tag {
    fn from(s: String) -> Self {
        Tag::new(s)
    }
}

impl AsRef<str> for Tag {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// An ordered set of [`Tag`]s carried by a token or produced by a mode.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TagSet(BTreeSet<Tag>);

impl TagSet {
    /// Creates an empty tag set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tag set containing a single tag.
    pub fn singleton(tag: impl Into<Tag>) -> Self {
        let mut set = Self::new();
        set.insert(tag);
        set
    }

    /// Inserts a tag; returns `true` if it was not present before.
    pub fn insert(&mut self, tag: impl Into<Tag>) -> bool {
        self.0.insert(tag.into())
    }

    /// Removes a tag; returns `true` if it was present.
    pub fn remove(&mut self, tag: &Tag) -> bool {
        self.0.remove(tag)
    }

    /// Returns `true` if the given tag is a member.
    pub fn contains(&self, tag: &Tag) -> bool {
        self.0.contains(tag)
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of tags in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates over the tags in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tag> {
        self.0.iter()
    }

    /// Set union, used when several producers contribute tags to a merged token.
    pub fn union(&self, other: &TagSet) -> TagSet {
        TagSet(self.0.union(&other.0).cloned().collect())
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        TagSet(iter.into_iter().collect())
    }
}

impl<'a> FromIterator<&'a str> for TagSet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        TagSet(iter.into_iter().map(Tag::new).collect())
    }
}

impl Extend<Tag> for TagSet {
    fn extend<I: IntoIterator<Item = Tag>>(&mut self, iter: I) {
        self.0.extend(iter)
    }
}

impl fmt::Display for TagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, tag) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tag}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_compare_by_name() {
        assert_eq!(Tag::new("a"), Tag::from("a"));
        assert_ne!(Tag::new("a"), Tag::new("b"));
    }

    #[test]
    fn tagset_insert_and_contains() {
        let mut set = TagSet::new();
        assert!(set.insert("V1"));
        assert!(!set.insert("V1"));
        assert!(set.contains(&Tag::new("V1")));
        assert!(!set.contains(&Tag::new("V2")));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn tagset_union_is_commutative() {
        let a: TagSet = ["a", "b"].into_iter().collect();
        let b: TagSet = ["b", "c"].into_iter().collect();
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).len(), 3);
    }

    #[test]
    fn tagset_display_is_sorted() {
        let set: TagSet = ["z", "a"].into_iter().collect();
        assert_eq!(set.to_string(), "{'a', 'z'}");
    }

    #[test]
    fn singleton_has_one_member() {
        let set = TagSet::singleton("resume");
        assert_eq!(set.len(), 1);
        assert!(set.contains(&Tag::new("resume")));
    }
}
