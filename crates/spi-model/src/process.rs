//! Process nodes.
//!
//! A process maps input data to output data at each execution. Its internal behaviour is
//! irrelevant at this abstraction level; it is characterised by its modes (parameter
//! tuples) and its activation function. Parameters queried at the process level are the
//! interval hulls over all modes.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::activation::ActivationFunction;
use crate::error::ModelError;
use crate::ids::{ChannelId, IdRemap, ModeId, ProcessId, Sym};
use crate::interval::Interval;
use crate::mode::ProcessMode;

/// A process node of an SPI graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    id: ProcessId,
    /// Interned: names live once in the process-global interner and the node
    /// carries a copyable handle, so cloning a process (the Flattener does it
    /// for every node of every enumerated variant) copies no string bytes.
    name: Sym,
    modes: Vec<ProcessMode>,
    activation: ActivationFunction,
    is_virtual: bool,
    next_mode: u32,
}

impl Process {
    /// Creates a process with no modes yet.
    pub fn new(id: ProcessId, name: impl AsRef<str>) -> Self {
        Self::new_interned(id, Sym::intern(name.as_ref()))
    }

    /// Internal: [`new`](Self::new) with a pre-interned name — the graph
    /// interns once for its duplicate-name check and passes the symbol along
    /// instead of paying a second interner probe.
    pub(crate) fn new_interned(id: ProcessId, name: Sym) -> Self {
        Process {
            id,
            name,
            modes: Vec::new(),
            activation: ActivationFunction::new(),
            is_virtual: false,
            next_mode: 0,
        }
    }

    /// Process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Process name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The interned name symbol (what the graph's name indexes key on).
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// Whether the process belongs to the environment model rather than the system.
    pub fn is_virtual(&self) -> bool {
        self.is_virtual
    }

    /// Marks the process as virtual (environment).
    pub fn set_virtual(&mut self, is_virtual: bool) {
        self.is_virtual = is_virtual;
    }

    /// Allocates a fresh mode id and adds a mode built by the given closure.
    ///
    /// The closure receives the allocated [`ModeId`] so rate entries can be added before
    /// the mode is stored.
    pub fn add_mode_with(
        &mut self,
        name: impl AsRef<str>,
        latency: Interval,
        build: impl FnOnce(&mut ProcessMode),
    ) -> ModeId {
        let id = ModeId::new(self.next_mode);
        self.next_mode += 1;
        let mut mode = ProcessMode::new(id, name, latency);
        build(&mut mode);
        self.modes.push(mode);
        id
    }

    /// Adds a fully-built mode, re-labelling it with a fresh id.
    ///
    /// Returns the id assigned to the stored mode. This is the entry point used by the
    /// variants layer when modes extracted from clusters are merged into one process.
    pub fn push_mode(&mut self, mode: ProcessMode) -> ModeId {
        let id = ModeId::new(self.next_mode);
        self.next_mode += 1;
        self.modes.push(mode.with_id(id));
        id
    }

    /// Looks up a mode by id.
    pub fn mode(&self, id: ModeId) -> Option<&ProcessMode> {
        self.modes.iter().find(|m| m.id() == id)
    }

    /// Looks up a mode by name.
    pub fn mode_by_name(&self, name: &str) -> Option<&ProcessMode> {
        self.modes.iter().find(|m| m.name() == name)
    }

    /// All modes of the process.
    pub fn modes(&self) -> &[ProcessMode] {
        &self.modes
    }

    /// Number of modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// The activation function of the process.
    pub fn activation(&self) -> &ActivationFunction {
        &self.activation
    }

    /// Replaces the activation function.
    pub fn set_activation(&mut self, activation: ActivationFunction) {
        self.activation = activation;
    }

    /// Interval hull of the execution latency over all modes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoModes`] for a process without modes.
    pub fn latency_hull(&self) -> Result<Interval, ModelError> {
        Interval::hull_all(self.modes.iter().map(|m| m.latency()))
            .ok_or(ModelError::NoModes(self.id))
    }

    /// Interval hull of consumption on `channel` over all modes (zero if never read).
    pub fn consumption_hull(&self, channel: ChannelId) -> Interval {
        Interval::hull_all(self.modes.iter().map(|m| m.consumption(channel)))
            .unwrap_or_else(Interval::zero)
    }

    /// Interval hull of production on `channel` over all modes (zero if never written).
    pub fn production_hull(&self, channel: ChannelId) -> Interval {
        Interval::hull_all(self.modes.iter().map(|m| {
            m.production(channel)
                .map(|s| s.amount)
                .unwrap_or_else(Interval::zero)
        }))
        .unwrap_or_else(Interval::zero)
    }

    /// Channels read by at least one mode.
    pub fn input_channels(&self) -> Vec<ChannelId> {
        let mut out: Vec<ChannelId> = self
            .modes
            .iter()
            .flat_map(|m| m.input_channels().collect::<Vec<_>>())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Channels written by at least one mode.
    pub fn output_channels(&self) -> Vec<ChannelId> {
        let mut out: Vec<ChannelId> = self
            .modes
            .iter()
            .flat_map(|m| m.output_channels().collect::<Vec<_>>())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Sets consumption of `rate` tokens from `channel` on every mode that does not yet
    /// declare consumption on that channel.
    ///
    /// This is the operation used when a process is connected to a channel after its
    /// modes were declared — by [`crate::GraphBuilder::connect_input`] and by the
    /// variants layer when a cluster port is spliced onto a parent channel.
    pub fn set_default_consumption(&mut self, channel: ChannelId, rate: Interval) {
        for mode in &mut self.modes {
            if mode.consumption(channel) == Interval::zero() {
                mode.set_consumption(channel, rate);
            }
        }
    }

    /// Sets production `spec` on `channel` for every mode that does not yet declare
    /// production on that channel. See [`set_default_consumption`](Self::set_default_consumption).
    pub fn set_default_production(
        &mut self,
        channel: ChannelId,
        spec: crate::mode::ProductionSpec,
    ) {
        for mode in &mut self.modes {
            if mode.production(channel).is_none() {
                mode.set_production(channel, spec.clone());
            }
        }
    }

    /// Checks internal consistency: the activation function must only reference existing
    /// modes. Channel consistency is checked by the graph, which knows the topology.
    pub fn validate(&self) -> Result<(), ModelError> {
        for mode_id in self.activation.referenced_modes() {
            if self.mode(mode_id).is_none() {
                return Err(ModelError::UnknownMode(self.id, mode_id));
            }
        }
        Ok(())
    }

    /// Internal: relabel the process id (graph merge).
    pub(crate) fn with_id(mut self, id: ProcessId) -> Self {
        self.id = id;
        self
    }

    /// Internal: rename the process (graph merge with name prefixing).
    pub(crate) fn with_name(mut self, name: Sym) -> Self {
        self.name = name;
        self
    }

    /// Internal: relabel channel references in modes and activation after a graph merge.
    pub(crate) fn remap_channels(&mut self, map: &IdRemap<ChannelId>) {
        for mode in &mut self.modes {
            mode.remap_channels(map);
        }
        self.activation.remap_channels(map);
    }

    /// Internal: offset-shift every channel reference — the dense-guest merge
    /// path, where `new id = old id + offset` for every channel without a
    /// remap-table probe.
    pub(crate) fn shift_channels(&mut self, offset: u32) {
        for mode in &mut self.modes {
            mode.shift_channels(offset);
        }
        self.activation.shift_channels(offset);
    }

    /// Internal mutable access to stored modes (used by extraction to qualify names).
    pub(crate) fn modes_mut(&mut self) -> &mut Vec<ProcessMode> {
        &mut self.modes
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` ({} modes)",
            self.id,
            self.name,
            self.modes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{ActivationRule, Predicate};
    use crate::mode::ProductionSpec;

    fn paper_p2() -> Process {
        // Process p2 from Figure 1: two modes m1 (3ms, 1 in, 2 out) and m2 (5ms, 3 in, 5 out).
        let mut p = Process::new(ProcessId::new(1), "p2");
        let c1 = ChannelId::new(0);
        let c2 = ChannelId::new(1);
        let m1 = p.add_mode_with("m1", Interval::point(3), |m| {
            m.set_consumption(c1, Interval::point(1));
            m.set_production(c2, ProductionSpec::amount(Interval::point(2)));
        });
        let m2 = p.add_mode_with("m2", Interval::point(5), |m| {
            m.set_consumption(c1, Interval::point(3));
            m.set_production(c2, ProductionSpec::amount(Interval::point(5)));
        });
        let af = ActivationFunction::new()
            .with_rule(ActivationRule::new(
                "a1",
                Predicate::min_tokens(c1, 1).and(Predicate::has_tag(c1, "a")),
                m1,
            ))
            .with_rule(ActivationRule::new(
                "a2",
                Predicate::min_tokens(c1, 3).and(Predicate::has_tag(c1, "b")),
                m2,
            ));
        p.set_activation(af);
        p
    }

    #[test]
    fn mode_ids_are_sequential_and_unique() {
        let p = paper_p2();
        assert_eq!(p.mode_count(), 2);
        assert_eq!(p.modes()[0].id(), ModeId::new(0));
        assert_eq!(p.modes()[1].id(), ModeId::new(1));
    }

    #[test]
    fn latency_hull_covers_all_modes() {
        let p = paper_p2();
        assert_eq!(p.latency_hull().unwrap(), Interval::new(3, 5).unwrap());
    }

    #[test]
    fn latency_hull_errors_without_modes() {
        let p = Process::new(ProcessId::new(9), "empty");
        assert_eq!(
            p.latency_hull(),
            Err(ModelError::NoModes(ProcessId::new(9)))
        );
    }

    #[test]
    fn rate_hulls_match_paper_intervals() {
        let p = paper_p2();
        // "p2 consumes at least 1 and at most 3 tokens from c1 and produces at least 2
        //  and at most 5 tokens on c2"
        assert_eq!(
            p.consumption_hull(ChannelId::new(0)),
            Interval::new(1, 3).unwrap()
        );
        assert_eq!(
            p.production_hull(ChannelId::new(1)),
            Interval::new(2, 5).unwrap()
        );
    }

    #[test]
    fn io_channel_lists() {
        let p = paper_p2();
        assert_eq!(p.input_channels(), vec![ChannelId::new(0)]);
        assert_eq!(p.output_channels(), vec![ChannelId::new(1)]);
    }

    #[test]
    fn validate_rejects_dangling_mode_reference() {
        let mut p = Process::new(ProcessId::new(2), "broken");
        p.add_mode_with("m0", Interval::point(1), |_| {});
        p.set_activation(ActivationFunction::always(ModeId::new(17)));
        assert!(matches!(
            p.validate(),
            Err(ModelError::UnknownMode(_, m)) if m == ModeId::new(17)
        ));
    }

    #[test]
    fn mode_lookup_by_name() {
        let p = paper_p2();
        assert!(p.mode_by_name("m2").is_some());
        assert!(p.mode_by_name("nope").is_none());
    }

    #[test]
    fn push_mode_relabels_id() {
        let mut p = Process::new(ProcessId::new(3), "q");
        let foreign = ProcessMode::new(ModeId::new(99), "imported", Interval::point(2));
        let id = p.push_mode(foreign);
        assert_eq!(id, ModeId::new(0));
        assert_eq!(p.mode(id).unwrap().name(), "imported");
    }
}
