//! Minimal JSON tree, parser and writer — the wire layer of the workspace.
//!
//! The offline build environment replaces serde with a no-op shim (see
//! `shims/serde`), so anything that must actually cross a process boundary —
//! the `spi-explore` job/lease protocol, exploration results, recorded
//! baselines — needs a real serialization layer. This module supplies one:
//! a [`JsonValue`] tree with a strict recursive-descent parser and a
//! deterministic writer, plus the [`ToJson`]/[`FromJson`] traits the higher
//! layers implement.
//!
//! The representations chosen here are the ones the real serde swap must
//! keep: notably, [`crate::Sym`] serializes as its **resolved string** and is
//! re-interned on parse, because the raw interner index is process-local and
//! meaningless on the other side of a pipe.
//!
//! Design constraints:
//!
//! * **Deterministic output** — object members keep insertion order (the tree
//!   stores them as a `Vec`), so equal values serialize byte-identically; the
//!   regression baselines diff cleanly.
//! * **Integer-exact numbers** — costs and variant indices are `u64`; the
//!   tree keeps integers as `i128` (covering the full `u64`/`i64` ranges)
//!   instead of routing everything through `f64` and silently losing
//!   precision above 2^53.
//! * **ndjson-friendly** — [`JsonValue::to_line`] never emits a newline, so a
//!   value is always exactly one line of a newline-delimited JSON stream.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::Sym;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, kept integer-exact.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order for deterministic output.
    Object(Vec<(String, JsonValue)>),
}

/// Error raised while parsing or interpreting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type JsonResult<T> = std::result::Result<T, JsonError>;

impl JsonValue {
    // --- constructors ---------------------------------------------------------------

    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object(members: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            members
                .into_iter()
                .map(|(key, value)| (key.into(), value))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn string(value: impl Into<String>) -> JsonValue {
        JsonValue::Str(value.into())
    }

    // --- accessors ------------------------------------------------------------------

    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// Member by key, as an error if missing.
    pub fn require(&self, key: &str) -> JsonResult<&JsonValue> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing key `{key}`")))
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(value) => Some(value),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(value) => u64::try_from(*value).ok(),
            _ => None,
        }
    }

    /// This value as a `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|value| usize::try_from(value).ok())
    }

    /// This value as an `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(value) => Some(*value as f64),
            JsonValue::Float(value) => Some(*value),
            _ => None,
        }
    }

    /// The elements behind this value, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(elements) => Some(elements),
            _ => None,
        }
    }

    /// The members behind this value, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    // --- writing --------------------------------------------------------------------

    /// Serializes the value as compact single-line JSON (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(value) => out.push_str(&value.to_string()),
            JsonValue::Float(value) => {
                if value.is_finite() {
                    // Guarantee a fractional marker so the value round-trips as Float.
                    let text = format!("{value}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-surprising encoding.
                    out.push_str("null");
                }
            }
            JsonValue::Str(value) => write_string(value, out),
            JsonValue::Array(elements) => {
                out.push('[');
                for (index, element) in elements.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    element.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (index, (key, value)) in members.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    // --- parsing --------------------------------------------------------------------

    /// Parses one JSON value from `input`, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset for malformed input.
    pub fn parse(input: &str) -> JsonResult<JsonValue> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            position: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

fn write_string(value: &str, out: &mut String) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.position))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.position += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> JsonResult<()> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> JsonResult<JsonValue> {
        if self.bytes[self.position..].starts_with(text.as_bytes()) {
            self.position += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> JsonResult<JsonValue> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> JsonResult<JsonValue> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(JsonValue::Array(elements));
        }
        loop {
            self.skip_whitespace();
            elements.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b']') => {
                    self.position += 1;
                    return Ok(JsonValue::Array(elements));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> JsonResult<JsonValue> {
        self.expect(b'{')?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        // Duplicate detection: a linear scan is fastest for the small objects
        // that dominate the wire, but the snapshot path parses one object
        // with a member per cached result — past a threshold, switch to a
        // hash set so recovery stays O(n).
        const LINEAR_SCAN_LIMIT: usize = 16;
        let mut seen: Option<std::collections::HashSet<String>> = None;
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            // Duplicate keys are ambiguous (which member wins?) and a classic
            // smuggling vector across parsers that disagree on the answer; the
            // writer never produces them, so the parser rejects them outright.
            let duplicate = match &mut seen {
                Some(seen) => !seen.insert(key.clone()),
                None => {
                    if members.len() == LINEAR_SCAN_LIMIT {
                        let set: std::collections::HashSet<String> =
                            members.iter().map(|(name, _)| name.clone()).collect();
                        let duplicate = set.contains(&key);
                        let seen = seen.insert(set);
                        seen.insert(key.clone());
                        duplicate
                    } else {
                        members.iter().any(|(existing, _)| *existing == key)
                    }
                }
            };
            if duplicate {
                return Err(self.error(&format!("duplicate object key `{key}`")));
            }
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b'}') => {
                    self.position += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.position += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.position += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.position += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so bytes are valid.
                    let rest = &self.bytes[self.position..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf8"))?;
                    let c = text.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.position += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (with surrogate-pair support); the
    /// caller has already consumed the `\` and positioned on the `u`.
    fn unicode_escape(&mut self) -> JsonResult<char> {
        self.position += 1; // the `u`
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.position += 1;
                if self.peek() == Some(b'u') {
                    self.position += 1;
                    let low = self.hex4()?;
                    if (0xDC00..0xE000).contains(&low) {
                        let combined = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                        return char::from_u32(combined)
                            .ok_or_else(|| self.error("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected hex digit")),
            };
            value = value * 16 + digit;
            self.position += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> JsonResult<JsonValue> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.position += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.position += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.position += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.position += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.position])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

// --- conversion traits ----------------------------------------------------------------

/// Serialization into the [`JsonValue`] tree.
///
/// This is the workspace's stand-in for `serde::Serialize` until the real
/// dependency can be fetched; impls define the exact representation the real
/// serde swap must preserve.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Deserialization from the [`JsonValue`] tree; the inverse of [`ToJson`].
pub trait FromJson: Sized {
    /// Rebuilds `Self` from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the value has the wrong shape.
    fn from_json(value: &JsonValue) -> JsonResult<Self>;
}

/// `Sym` crosses process boundaries as its **resolved string** — the raw
/// interner index is process-local and would alias an unrelated name (or
/// nothing at all) in the receiving process.
impl ToJson for Sym {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.as_str().to_string())
    }
}

/// Re-interns the transported string into the receiving process's table.
impl FromJson for Sym {
    fn from_json(value: &JsonValue) -> JsonResult<Sym> {
        value
            .as_str()
            .map(Sym::intern)
            .ok_or_else(|| JsonError::new("expected a string for Sym"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl FromJson for u64 {
    fn from_json(value: &JsonValue) -> JsonResult<u64> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::new("expected a non-negative integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::Int(*self as i128)
    }
}

impl FromJson for usize {
    fn from_json(value: &JsonValue) -> JsonResult<usize> {
        value
            .as_usize()
            .ok_or_else(|| JsonError::new("expected a non-negative integer"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &JsonValue) -> JsonResult<String> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected a string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &JsonValue) -> JsonResult<Vec<T>> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(inner) => inner.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &JsonValue) -> JsonResult<Option<T>> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(key, value)| (key.clone(), value.to_json()))
                .collect(),
        )
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(value: &JsonValue) -> JsonResult<BTreeMap<String, V>> {
        value
            .as_object()
            .ok_or_else(|| JsonError::new("expected an object"))?
            .iter()
            .map(|(key, value)| Ok((key.clone(), V::from_json(value)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "12345678901234567890"] {
            let value = JsonValue::parse(text).unwrap();
            assert_eq!(value.to_line(), text);
        }
        let float = JsonValue::parse("1.5").unwrap();
        assert_eq!(float, JsonValue::Float(1.5));
        assert_eq!(float.to_line(), "1.5");
    }

    #[test]
    fn u64_values_survive_exactly() {
        let value = JsonValue::Int(u64::MAX as i128);
        let reparsed = JsonValue::parse(&value.to_line()).unwrap();
        assert_eq!(reparsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn float_without_fraction_keeps_a_marker() {
        let value = JsonValue::Float(2.0);
        assert_eq!(value.to_line(), "2.0");
        assert_eq!(JsonValue::parse("2.0").unwrap(), value);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} nul:\u{01}";
        let value = JsonValue::string(original);
        let line = value.to_line();
        assert!(!line.contains('\n'), "ndjson values must stay on one line");
        assert_eq!(JsonValue::parse(&line).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(JsonValue::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        // Surrogate pair for 😀.
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"op":"submit","job":{"shards":8,"names":["a","b"],"nested":{"x":null}}}"#;
        let value = JsonValue::parse(text).unwrap();
        assert_eq!(value.to_line(), text);
        assert_eq!(
            value.get("job").unwrap().get("shards").unwrap().as_u64(),
            Some(8)
        );
        assert_eq!(value.get("missing"), None);
        assert!(value.require("missing").is_err());
    }

    #[test]
    fn object_member_order_is_preserved() {
        let value = JsonValue::object([("zebra", JsonValue::Int(1)), ("alpha", JsonValue::Int(2))]);
        assert_eq!(value.to_line(), r#"{"zebra":1,"alpha":2}"#);
    }

    #[test]
    fn malformed_input_is_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01a",
            "\"unterminated",
            "1 2",
            "{]",
            r#"{"a":1,"a":2}"#,
        ] {
            assert!(JsonValue::parse(text).is_err(), "`{text}` should not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = JsonValue::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(value.to_line(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn sym_serializes_as_its_string() {
        let sym = Sym::intern("spi_model::json::tests::wire_name");
        let json = sym.to_json();
        assert_eq!(json.as_str(), Some("spi_model::json::tests::wire_name"));
        let back = Sym::from_json(&json).unwrap();
        assert_eq!(back, sym);
        assert!(Sym::from_json(&JsonValue::Int(3)).is_err());
    }

    #[test]
    fn container_impls_round_trip() {
        let names = vec!["a".to_string(), "b".to_string()];
        assert_eq!(Vec::<String>::from_json(&names.to_json()).unwrap(), names);
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 7u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_json(&map.to_json()).unwrap(),
            map
        );
        assert_eq!(Option::<u64>::from_json(&JsonValue::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_json(&JsonValue::Int(4)).unwrap(),
            Some(4)
        );
        assert!(u64::from_json(&JsonValue::Int(-1)).is_err());
        assert_eq!(usize::from_json(&JsonValue::Int(9)).unwrap(), 9usize);
    }
}
