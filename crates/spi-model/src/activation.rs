//! Activation functions.
//!
//! A process's **activation function** is a finite set of rules, each mapping an input
//! token predicate to a mode. A predicate is evaluated against the number of available
//! tokens and the tag set of the first visible token on the process's input channels,
//! exactly as described in Section 2 of the paper:
//!
//! ```text
//! a1 : (c1.num >= 1) && ('a' in c1.tag)  ->  m1
//! a2 : (c1.num >= 3) && ('b' in c1.tag)  ->  m2
//! ```
//!
//! Predicate evaluation is decoupled from the simulator through the [`ChannelView`]
//! trait, so the same predicates serve model validation, cluster selection (Def. 3 of
//! the paper) and simulation.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ids::{ChannelId, ModeId, Sym};
use crate::tag::Tag;

/// Read-only view of channel state needed to evaluate a [`Predicate`].
///
/// Implemented by the simulator's channel states; a trivial implementation over a map is
/// provided for tests via [`ChannelSnapshot`].
pub trait ChannelView {
    /// Number of tokens currently available (visible) on the channel.
    fn available(&self, channel: ChannelId) -> u64;
    /// Returns `true` if the first visible token on the channel carries the tag.
    fn first_token_has_tag(&self, channel: ChannelId, tag: &Tag) -> bool;
}

/// A simple map-backed [`ChannelView`] for tests and static analysis.
#[derive(Debug, Clone, Default)]
pub struct ChannelSnapshot {
    entries: std::collections::BTreeMap<ChannelId, (u64, Vec<Tag>)>,
}

impl ChannelSnapshot {
    /// Creates an empty snapshot (all channels empty).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of available tokens and the tags of the first visible token.
    pub fn set(&mut self, channel: ChannelId, available: u64, first_tags: Vec<Tag>) {
        self.entries.insert(channel, (available, first_tags));
    }
}

impl ChannelView for ChannelSnapshot {
    fn available(&self, channel: ChannelId) -> u64 {
        self.entries.get(&channel).map(|(n, _)| *n).unwrap_or(0)
    }

    fn first_token_has_tag(&self, channel: ChannelId, tag: &Tag) -> bool {
        self.entries
            .get(&channel)
            .map(|(_, tags)| tags.contains(tag))
            .unwrap_or(false)
    }
}

/// An input-token predicate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (unconditional activation).
    True,
    /// Always false (used to disable a rule without removing it).
    False,
    /// At least `count` tokens are available on `channel` (`channel.num >= count`).
    MinTokens {
        /// Channel whose fill level is inspected.
        channel: ChannelId,
        /// Minimum number of tokens required.
        count: u64,
    },
    /// The first visible token on `channel` carries `tag` (`tag ∈ channel.tag`).
    HasTag {
        /// Channel whose first visible token is inspected.
        channel: ChannelId,
        /// Required tag.
        tag: Tag,
    },
    /// The first visible token on `channel` does not carry `tag`.
    LacksTag {
        /// Channel whose first visible token is inspected.
        channel: ChannelId,
        /// Tag that must be absent.
        tag: Tag,
    },
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction of all sub-predicates (true when empty).
    All(Vec<Predicate>),
    /// Disjunction of the sub-predicates (false when empty).
    Any(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `channel.num >= count`.
    pub fn min_tokens(channel: ChannelId, count: u64) -> Self {
        Predicate::MinTokens { channel, count }
    }

    /// Convenience constructor for `tag ∈ channel.tag`.
    pub fn has_tag(channel: ChannelId, tag: impl Into<Tag>) -> Self {
        Predicate::HasTag {
            channel,
            tag: tag.into(),
        }
    }

    /// Conjunction of `self` and `other`.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::All(mut a), Predicate::All(b)) => {
                a.extend(b);
                Predicate::All(a)
            }
            (Predicate::All(mut a), b) => {
                a.push(b);
                Predicate::All(a)
            }
            (a, Predicate::All(mut b)) => {
                b.insert(0, a);
                Predicate::All(b)
            }
            (a, b) => Predicate::All(vec![a, b]),
        }
    }

    /// Disjunction of `self` and `other`.
    pub fn or(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::Any(mut a), Predicate::Any(b)) => {
                a.extend(b);
                Predicate::Any(a)
            }
            (Predicate::Any(mut a), b) => {
                a.push(b);
                Predicate::Any(a)
            }
            (a, b) => Predicate::Any(vec![a, b]),
        }
    }

    /// Evaluates the predicate against a channel state view.
    pub fn eval<V: ChannelView + ?Sized>(&self, view: &V) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::MinTokens { channel, count } => view.available(*channel) >= *count,
            Predicate::HasTag { channel, tag } => view.first_token_has_tag(*channel, tag),
            Predicate::LacksTag { channel, tag } => {
                view.available(*channel) > 0 && !view.first_token_has_tag(*channel, tag)
            }
            Predicate::Not(inner) => !inner.eval(view),
            Predicate::All(items) => items.iter().all(|p| p.eval(view)),
            Predicate::Any(items) => items.iter().any(|p| p.eval(view)),
        }
    }

    /// All channels referenced by this predicate (used for validation).
    pub fn referenced_channels(&self) -> Vec<ChannelId> {
        let mut out = Vec::new();
        self.collect_channels(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_channels(&self, out: &mut Vec<ChannelId>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::MinTokens { channel, .. }
            | Predicate::HasTag { channel, .. }
            | Predicate::LacksTag { channel, .. } => out.push(*channel),
            Predicate::Not(inner) => inner.collect_channels(out),
            Predicate::All(items) | Predicate::Any(items) => {
                for p in items {
                    p.collect_channels(out);
                }
            }
        }
    }

    /// Internal: relabel channel references after a graph merge.
    pub(crate) fn remap_channels(&mut self, map: &crate::ids::IdRemap<ChannelId>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::MinTokens { channel, .. }
            | Predicate::HasTag { channel, .. }
            | Predicate::LacksTag { channel, .. } => {
                if let Some(new) = map.get(channel) {
                    *channel = *new;
                }
            }
            Predicate::Not(inner) => inner.remap_channels(map),
            Predicate::All(items) | Predicate::Any(items) => {
                for p in items {
                    p.remap_channels(map);
                }
            }
        }
    }

    /// Internal: the offset-shift special case of
    /// [`remap_channels`](Self::remap_channels), for splices where every
    /// channel id moves by the same distance.
    pub(crate) fn shift_channels(&mut self, offset: u32) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::MinTokens { channel, .. }
            | Predicate::HasTag { channel, .. }
            | Predicate::LacksTag { channel, .. } => {
                *channel = ChannelId::new(channel.index() + offset);
            }
            Predicate::Not(inner) => inner.shift_channels(offset),
            Predicate::All(items) | Predicate::Any(items) => {
                for p in items {
                    p.shift_channels(offset);
                }
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::MinTokens { channel, count } => write!(f, "{channel}.num >= {count}"),
            Predicate::HasTag { channel, tag } => write!(f, "{tag} in {channel}.tag"),
            Predicate::LacksTag { channel, tag } => write!(f, "{tag} not in {channel}.tag"),
            Predicate::Not(inner) => write!(f, "!({inner})"),
            Predicate::All(items) => {
                write!(f, "(")?;
                for (i, p) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Any(items) => {
                write!(f, "(")?;
                for (i, p) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A single activation rule: predicate → mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationRule {
    /// Rule name (e.g. `a1`), interned — rules are cloned with their process
    /// once per enumerated variant, so the name is a `Copy` handle.
    pub name: Sym,
    /// Predicate over the process's input channels.
    pub predicate: Predicate,
    /// Mode activated when the predicate holds.
    pub mode: ModeId,
}

impl ActivationRule {
    /// Creates a named activation rule.
    pub fn new(name: impl AsRef<str>, predicate: Predicate, mode: ModeId) -> Self {
        ActivationRule {
            name: Sym::intern(name.as_ref()),
            predicate,
            mode,
        }
    }
}

impl fmt::Display for ActivationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.name, self.predicate, self.mode)
    }
}

/// The activation function of a process: an ordered set of rules.
///
/// Rules are evaluated in order; the first rule whose predicate holds selects the mode.
/// If no rule is enabled the process is not activated (the paper assumes correct models,
/// so this situation is simply "not activated", not an error).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationFunction {
    rules: Vec<ActivationRule>,
}

impl ActivationFunction {
    /// Creates an empty activation function (the process is never data-activated;
    /// such processes are typically sources driven by the environment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an activation function that unconditionally activates the given mode.
    pub fn always(mode: ModeId) -> Self {
        ActivationFunction {
            rules: vec![ActivationRule::new("always", Predicate::True, mode)],
        }
    }

    /// Appends a rule; rules are evaluated in insertion order.
    pub fn push(&mut self, rule: ActivationRule) {
        self.rules.push(rule);
    }

    /// Adds a rule and returns `self` for chaining.
    pub fn with_rule(mut self, rule: ActivationRule) -> Self {
        self.push(rule);
        self
    }

    /// The rules in evaluation order.
    pub fn rules(&self) -> &[ActivationRule] {
        &self.rules
    }

    /// Returns `true` if the function has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates the function: the first enabled rule selects the mode.
    pub fn select<V: ChannelView + ?Sized>(&self, view: &V) -> Option<ModeId> {
        self.rules
            .iter()
            .find(|rule| rule.predicate.eval(view))
            .map(|rule| rule.mode)
    }

    /// Returns the enabled rule itself (useful for tracing).
    pub fn select_rule<V: ChannelView + ?Sized>(&self, view: &V) -> Option<&ActivationRule> {
        self.rules.iter().find(|rule| rule.predicate.eval(view))
    }

    /// All channels referenced by any rule.
    pub fn referenced_channels(&self) -> Vec<ChannelId> {
        let mut out: Vec<ChannelId> = self
            .rules
            .iter()
            .flat_map(|r| r.predicate.referenced_channels())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All modes referenced by any rule.
    pub fn referenced_modes(&self) -> Vec<ModeId> {
        let mut out: Vec<ModeId> = self.rules.iter().map(|r| r.mode).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Internal: relabel channel references after a graph merge.
    pub(crate) fn remap_channels(&mut self, map: &crate::ids::IdRemap<ChannelId>) {
        for rule in &mut self.rules {
            rule.predicate.remap_channels(map);
        }
    }

    /// Internal: offset-shift every channel reference; see
    /// [`Predicate::shift_channels`].
    pub(crate) fn shift_channels(&mut self, offset: u32) {
        for rule in &mut self.rules {
            rule.predicate.shift_channels(offset);
        }
    }
}

impl fmt::Display for ActivationFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ChannelId {
        ChannelId::new(n)
    }

    /// The paper's example rules for process p2:
    /// a1: c1.num >= 1 && 'a' in c1.tag -> m1
    /// a2: c1.num >= 3 && 'b' in c1.tag -> m2
    fn paper_rules() -> ActivationFunction {
        ActivationFunction::new()
            .with_rule(ActivationRule::new(
                "a1",
                Predicate::min_tokens(c(0), 1).and(Predicate::has_tag(c(0), "a")),
                ModeId::new(0),
            ))
            .with_rule(ActivationRule::new(
                "a2",
                Predicate::min_tokens(c(0), 3).and(Predicate::has_tag(c(0), "b")),
                ModeId::new(1),
            ))
    }

    #[test]
    fn paper_example_selects_m1_on_tag_a() {
        let af = paper_rules();
        let mut view = ChannelSnapshot::new();
        view.set(c(0), 1, vec![Tag::new("a")]);
        assert_eq!(af.select(&view), Some(ModeId::new(0)));
    }

    #[test]
    fn paper_example_selects_m2_on_three_b_tokens() {
        let af = paper_rules();
        let mut view = ChannelSnapshot::new();
        view.set(c(0), 3, vec![Tag::new("b")]);
        assert_eq!(af.select(&view), Some(ModeId::new(1)));
    }

    #[test]
    fn no_rule_enabled_means_not_activated() {
        let af = paper_rules();
        let mut view = ChannelSnapshot::new();
        // Tokens present but untagged: neither rule fires.
        view.set(c(0), 5, vec![]);
        assert_eq!(af.select(&view), None);
        // Tag 'b' present but only 2 tokens: a2 requires 3.
        view.set(c(0), 2, vec![Tag::new("b")]);
        assert_eq!(af.select(&view), None);
    }

    #[test]
    fn rule_order_breaks_ties() {
        let af = ActivationFunction::new()
            .with_rule(ActivationRule::new("r1", Predicate::True, ModeId::new(7)))
            .with_rule(ActivationRule::new("r2", Predicate::True, ModeId::new(8)));
        assert_eq!(af.select(&ChannelSnapshot::new()), Some(ModeId::new(7)));
        assert_eq!(
            af.select_rule(&ChannelSnapshot::new())
                .unwrap()
                .name
                .as_str(),
            "r1"
        );
    }

    #[test]
    fn lacks_tag_requires_a_token() {
        let p = Predicate::LacksTag {
            channel: c(1),
            tag: Tag::new("x"),
        };
        let mut view = ChannelSnapshot::new();
        assert!(!p.eval(&view), "no token: cannot assert absence of a tag");
        view.set(c(1), 1, vec![Tag::new("y")]);
        assert!(p.eval(&view));
        view.set(c(1), 1, vec![Tag::new("x")]);
        assert!(!p.eval(&view));
    }

    #[test]
    fn boolean_combinators() {
        let mut view = ChannelSnapshot::new();
        view.set(c(0), 2, vec![Tag::new("a")]);
        let p = Predicate::min_tokens(c(0), 1)
            .and(Predicate::has_tag(c(0), "a"))
            .or(Predicate::min_tokens(c(0), 100));
        assert!(p.eval(&view));
        assert!(!Predicate::Not(Box::new(p)).eval(&view));
        assert!(
            Predicate::All(vec![]).eval(&view),
            "empty conjunction is true"
        );
        assert!(
            !Predicate::Any(vec![]).eval(&view),
            "empty disjunction is false"
        );
    }

    #[test]
    fn referenced_channels_and_modes_are_deduplicated() {
        let af = paper_rules();
        assert_eq!(af.referenced_channels(), vec![c(0)]);
        assert_eq!(af.referenced_modes(), vec![ModeId::new(0), ModeId::new(1)]);
    }

    #[test]
    fn display_reads_like_the_paper() {
        let rule = ActivationRule::new(
            "a1",
            Predicate::min_tokens(c(0), 1).and(Predicate::has_tag(c(0), "a")),
            ModeId::new(0),
        );
        let text = rule.to_string();
        assert!(text.contains("C0.num >= 1"));
        assert!(text.contains("'a' in C0.tag"));
        assert!(text.ends_with("-> m0"));
    }
}
