//! Closed integer intervals — the "property intervals" that give the SPI model its name.
//!
//! Every behavioural parameter of a process (latency, data consumption, data production)
//! is represented as a lower and an upper bound. A completely determinate parameter is a
//! point interval. Intervals support the lattice operations needed by the variants layer
//! (hull/join for abstracting several modes or clusters into one process, intersection for
//! refinement) and the arithmetic needed by timing analysis (sum along a path, scaling by
//! an execution count).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ModelError;

/// A closed interval `[lo, hi]` over `u64` with `lo <= hi`.
///
/// # Example
///
/// ```rust
/// use spi_model::Interval;
///
/// # fn main() -> Result<(), spi_model::ModelError> {
/// let latency = Interval::new(3, 5)?;
/// assert!(latency.contains(4));
/// assert_eq!(latency.hull(Interval::point(1)), Interval::new(1, 5)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidInterval`] if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Result<Self, ModelError> {
        if lo > hi {
            Err(ModelError::InvalidInterval { lo, hi })
        } else {
            Ok(Self { lo, hi })
        }
    }

    /// Creates the point interval `[v, v]` (a completely determinate parameter).
    pub const fn point(v: u64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Creates the interval `[0, 0]`.
    pub const fn zero() -> Self {
        Self::point(0)
    }

    /// Lower bound.
    pub const fn lo(self) -> u64 {
        self.lo
    }

    /// Upper bound.
    pub const fn hi(self) -> u64 {
        self.hi
    }

    /// Returns `true` if the interval is a single point.
    pub const fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Width of the interval (`hi - lo`); zero for point intervals.
    pub const fn width(self) -> u64 {
        self.hi - self.lo
    }

    /// Returns `true` if `v` lies within the interval.
    pub const fn contains(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    pub const fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Smallest interval containing both operands (lattice join).
    ///
    /// This is the operation used when several modes or clusters are abstracted into a
    /// single process: the resulting parameter must cover every constituent behaviour.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection of the two intervals, or `None` if they are disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Interval sum `[a.lo + b.lo, a.hi + b.hi]` (saturating), used to accumulate
    /// latency along a path. Also available as the `+` operator.
    #[allow(clippy::should_implement_trait)] // `std::ops::Add` is implemented below; the inherent name stays for the existing callers
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Adds a scalar offset to both bounds (saturating).
    pub fn offset(self, delta: u64) -> Interval {
        Interval {
            lo: self.lo.saturating_add(delta),
            hi: self.hi.saturating_add(delta),
        }
    }

    /// Scales both bounds by a factor (saturating), used when a parameter is incurred
    /// once per execution and the execution count is known.
    pub fn scale(self, factor: u64) -> Interval {
        Interval {
            lo: self.lo.saturating_mul(factor),
            hi: self.hi.saturating_mul(factor),
        }
    }

    /// Returns the hull of an iterator of intervals, or `None` for an empty iterator.
    pub fn hull_all<I: IntoIterator<Item = Interval>>(intervals: I) -> Option<Interval> {
        intervals.into_iter().reduce(Interval::hull)
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::zero()
    }
}

impl From<u64> for Interval {
    fn from(v: u64) -> Self {
        Interval::point(v)
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Operator form of [`Interval::add`] (saturating interval sum).
    fn add(self, other: Interval) -> Interval {
        Interval::add(self, other)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted_bounds() {
        assert_eq!(
            Interval::new(5, 3),
            Err(ModelError::InvalidInterval { lo: 5, hi: 3 })
        );
    }

    #[test]
    fn point_interval_properties() {
        let p = Interval::point(7);
        assert!(p.is_point());
        assert_eq!(p.width(), 0);
        assert!(p.contains(7));
        assert!(!p.contains(8));
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(1, 3).unwrap();
        let b = Interval::new(2, 5).unwrap();
        let h = a.hull(b);
        assert_eq!(h, Interval::new(1, 5).unwrap());
        assert!(h.contains_interval(a));
        assert!(h.contains_interval(b));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Interval::new(1, 2).unwrap();
        let b = Interval::new(4, 6).unwrap();
        assert_eq!(a.intersect(b), None);
        assert_eq!(
            a.intersect(Interval::new(2, 6).unwrap()),
            Some(Interval::point(2))
        );
    }

    #[test]
    fn add_and_scale_saturate() {
        let big = Interval::new(u64::MAX - 1, u64::MAX).unwrap();
        assert_eq!(big.add(Interval::point(10)).hi(), u64::MAX);
        assert_eq!(big.scale(3).lo(), u64::MAX);
    }

    #[test]
    fn hull_all_of_empty_is_none() {
        assert_eq!(Interval::hull_all(std::iter::empty()), None);
        assert_eq!(
            Interval::hull_all([Interval::point(2), Interval::new(5, 9).unwrap()]),
            Some(Interval::new(2, 9).unwrap())
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::point(4).to_string(), "4");
        assert_eq!(Interval::new(3, 5).unwrap().to_string(), "[3, 5]");
    }
}
