//! Static analyses over SPI graphs.
//!
//! These analyses operate purely on the abstract parameters (interval hulls) and the
//! topology; they are the foundation of the timing-constraint check and of several
//! synthesis heuristics:
//!
//! * [`GraphAnalysis`] — structural facts: topological order, sources/sinks, weakly
//!   connected components;
//! * [`LatencyAnalysis`] — best/worst-case end-to-end latency between two processes;
//! * [`RateConsistency`] — SDF-style balance analysis producing a repetition vector
//!   when all rates are determinate.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::error::ModelError;
use crate::graph::SpiGraph;
use crate::ids::ProcessId;
use crate::interval::Interval;

/// Structural analysis results for one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphAnalysis {
    order: Option<Vec<ProcessId>>,
    sources: Vec<ProcessId>,
    sinks: Vec<ProcessId>,
    components: Vec<Vec<ProcessId>>,
}

impl GraphAnalysis {
    /// Analyses the process-level structure of `graph`.
    pub fn new(graph: &SpiGraph) -> Self {
        let ids = graph.process_ids();
        let sources = ids
            .iter()
            .copied()
            .filter(|p| graph.predecessors(*p).is_empty())
            .collect();
        let sinks = ids
            .iter()
            .copied()
            .filter(|p| graph.successors(*p).is_empty())
            .collect();
        GraphAnalysis {
            order: topological_order(graph),
            sources,
            sinks,
            components: weak_components(graph),
        }
    }

    /// Returns `true` if the process-level dependency graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.order.is_some()
    }

    /// A topological order of the processes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] if the graph has a cycle.
    pub fn topological_order(&self) -> Result<&[ProcessId], ModelError> {
        self.order.as_deref().ok_or(ModelError::CyclicGraph)
    }

    /// Processes without predecessors.
    pub fn sources(&self) -> &[ProcessId] {
        &self.sources
    }

    /// Processes without successors.
    pub fn sinks(&self) -> &[ProcessId] {
        &self.sinks
    }

    /// Weakly connected components (each sorted by id).
    pub fn components(&self) -> &[Vec<ProcessId>] {
        &self.components
    }

    /// Number of weakly connected components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

fn topological_order(graph: &SpiGraph) -> Option<Vec<ProcessId>> {
    let ids = graph.process_ids();
    let mut indegree: BTreeMap<ProcessId, usize> = ids
        .iter()
        .map(|p| (*p, graph.predecessors(*p).len()))
        .collect();
    let mut queue: VecDeque<ProcessId> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(p, _)| *p)
        .collect();
    let mut order = Vec::with_capacity(ids.len());
    while let Some(p) = queue.pop_front() {
        order.push(p);
        for succ in graph.successors(p) {
            let d = indegree.get_mut(&succ).expect("known process");
            *d -= 1;
            if *d == 0 {
                queue.push_back(succ);
            }
        }
    }
    if order.len() == ids.len() {
        Some(order)
    } else {
        None
    }
}

fn weak_components(graph: &SpiGraph) -> Vec<Vec<ProcessId>> {
    let ids = graph.process_ids();
    let mut seen: BTreeSet<ProcessId> = BTreeSet::new();
    let mut components = Vec::new();
    for start in ids {
        if seen.contains(&start) {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            component.push(p);
            for n in graph.successors(p).into_iter().chain(graph.predecessors(p)) {
                if !seen.contains(&n) {
                    stack.push(n);
                }
            }
        }
        component.sort();
        components.push(component);
    }
    components
}

/// Best/worst-case end-to-end latency analysis.
#[derive(Debug, Clone)]
pub struct LatencyAnalysis<'g> {
    graph: &'g SpiGraph,
}

impl<'g> LatencyAnalysis<'g> {
    /// Creates the analysis for a graph.
    pub fn new(graph: &'g SpiGraph) -> Self {
        LatencyAnalysis { graph }
    }

    /// Best/worst-case latency accumulated along process paths from `from` to `to`,
    /// inclusive of both endpoint latencies.
    ///
    /// The lower bound is the cheapest path (sum of mode-latency lower bounds), the
    /// upper bound the most expensive path (sum of upper bounds).
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownProcess`] if an endpoint does not exist;
    /// * [`ModelError::CyclicGraph`] if a cycle is reachable between the endpoints;
    /// * [`ModelError::Validation`] if `to` is not reachable from `from`;
    /// * [`ModelError::NoModes`] if a process on a path has no modes.
    pub fn end_to_end(&self, from: ProcessId, to: ProcessId) -> Result<Interval, ModelError> {
        if self.graph.process(from).is_none() {
            return Err(ModelError::UnknownProcess(from));
        }
        if self.graph.process(to).is_none() {
            return Err(ModelError::UnknownProcess(to));
        }
        let mut memo: BTreeMap<ProcessId, Option<(u64, u64)>> = BTreeMap::new();
        let mut on_stack: BTreeSet<ProcessId> = BTreeSet::new();
        let result = self.visit(from, to, &mut memo, &mut on_stack)?;
        match result {
            Some((lo, hi)) => Ok(Interval::new(lo, hi).expect("lo <= hi by construction")),
            None => Err(ModelError::Validation(format!(
                "process {to} is not reachable from {from}"
            ))),
        }
    }

    fn visit(
        &self,
        current: ProcessId,
        target: ProcessId,
        memo: &mut BTreeMap<ProcessId, Option<(u64, u64)>>,
        on_stack: &mut BTreeSet<ProcessId>,
    ) -> Result<Option<(u64, u64)>, ModelError> {
        if let Some(cached) = memo.get(&current) {
            return Ok(*cached);
        }
        if !on_stack.insert(current) {
            return Err(ModelError::CyclicGraph);
        }
        let own = self
            .graph
            .process(current)
            .ok_or(ModelError::UnknownProcess(current))?
            .latency_hull()?;
        let result = if current == target {
            Some((own.lo(), own.hi()))
        } else {
            let mut best: Option<(u64, u64)> = None;
            for succ in self.graph.successors(current) {
                if let Some((lo, hi)) = self.visit(succ, target, memo, on_stack)? {
                    let candidate = (own.lo().saturating_add(lo), own.hi().saturating_add(hi));
                    best = Some(match best {
                        None => candidate,
                        Some((blo, bhi)) => (blo.min(candidate.0), bhi.max(candidate.1)),
                    });
                }
            }
            best
        };
        on_stack.remove(&current);
        memo.insert(current, result);
        Ok(result)
    }
}

/// Result of the SDF-style rate-balance analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateConsistency {
    /// All rates are determinate and the balance equations have a solution; the map
    /// gives the smallest positive integer repetition count per process.
    Consistent {
        /// Repetition vector (executions per iteration of the whole graph).
        repetitions: BTreeMap<ProcessId, u64>,
    },
    /// All rates are determinate but the balance equations are contradictory.
    Inconsistent,
    /// At least one rate is a non-point interval, so balance analysis does not apply.
    NotApplicable,
}

impl RateConsistency {
    /// Runs the analysis on a graph.
    ///
    /// Rates are taken as the hull over all modes of each process; if any hull is a
    /// proper interval the result is [`RateConsistency::NotApplicable`].
    pub fn analyze(graph: &SpiGraph) -> Self {
        // Collect per-channel (producer rate, consumer rate) pairs.
        struct Balance {
            writer: ProcessId,
            reader: ProcessId,
            produced: u64,
            consumed: u64,
        }
        let mut balances = Vec::new();
        for channel in graph.channels() {
            let (Some(writer), Some(reader)) =
                (graph.writer_of(channel.id()), graph.reader_of(channel.id()))
            else {
                continue;
            };
            let produced = match graph.process(writer) {
                Some(p) => p.production_hull(channel.id()),
                None => continue,
            };
            let consumed = match graph.process(reader) {
                Some(p) => p.consumption_hull(channel.id()),
                None => continue,
            };
            if !produced.is_point() || !consumed.is_point() {
                return RateConsistency::NotApplicable;
            }
            if produced.lo() == 0 || consumed.lo() == 0 {
                // A channel that is never written or never read does not constrain rates.
                continue;
            }
            balances.push(Balance {
                writer,
                reader,
                produced: produced.lo(),
                consumed: consumed.lo(),
            });
        }

        // Propagate rational repetition counts by BFS over the balance constraints.
        let mut ratios: BTreeMap<ProcessId, Ratio> = BTreeMap::new();
        for start in graph.process_ids() {
            if ratios.contains_key(&start) {
                continue;
            }
            ratios.insert(start, Ratio::new(1, 1));
            let mut changed = true;
            while changed {
                changed = false;
                for b in &balances {
                    match (
                        ratios.get(&b.writer).copied(),
                        ratios.get(&b.reader).copied(),
                    ) {
                        (Some(w), None) => {
                            // w * produced = r * consumed  =>  r = w * produced / consumed
                            ratios.insert(b.reader, w.mul(b.produced, b.consumed));
                            changed = true;
                        }
                        (None, Some(r)) => {
                            ratios.insert(b.writer, r.mul(b.consumed, b.produced));
                            changed = true;
                        }
                        (Some(w), Some(r)) => {
                            if w.mul(b.produced, 1) != r.mul(b.consumed, 1) {
                                return RateConsistency::Inconsistent;
                            }
                        }
                        (None, None) => {}
                    }
                }
            }
        }

        // Scale all ratios to the smallest positive integers.
        let lcm_den = ratios.values().map(|r| r.den).fold(1u64, lcm);
        let mut repetitions: BTreeMap<ProcessId, u64> = ratios
            .into_iter()
            .map(|(p, r)| (p, r.num * (lcm_den / r.den)))
            .collect();
        let gcd_all = repetitions.values().copied().fold(0u64, gcd);
        if gcd_all > 1 {
            for value in repetitions.values_mut() {
                *value /= gcd_all;
            }
        }
        RateConsistency::Consistent { repetitions }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn new(num: u64, den: u64) -> Self {
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Self {
        Ratio::new(self.num * num, self.den * den)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::channel::ChannelKind;

    fn sdf_chain() -> SpiGraph {
        // a --2--> c1 --3--> b --1--> c2 --2--> z
        let mut b = GraphBuilder::new("sdf");
        let a = b.process("a").latency(Interval::point(1)).build().unwrap();
        let m = b.process("m").latency(Interval::point(2)).build().unwrap();
        let z = b.process("z").latency(Interval::point(1)).build().unwrap();
        let c1 = b.channel("c1", ChannelKind::Queue).unwrap();
        let c2 = b.channel("c2", ChannelKind::Queue).unwrap();
        b.connect_output(a, c1, Interval::point(2)).unwrap();
        b.connect_input(c1, m, Interval::point(3)).unwrap();
        b.connect_output(m, c2, Interval::point(1)).unwrap();
        b.connect_input(c2, z, Interval::point(2)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn structural_analysis_of_chain() {
        let g = sdf_chain();
        let a = GraphAnalysis::new(&g);
        assert!(a.is_acyclic());
        assert_eq!(a.component_count(), 1);
        assert_eq!(a.sources().len(), 1);
        assert_eq!(a.sinks().len(), 1);
        let order = a.topological_order().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(g.process(order[0]).unwrap().name(), "a");
        assert_eq!(g.process(order[2]).unwrap().name(), "z");
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = SpiGraph::new("cycle");
        let p = g.new_process("p").unwrap();
        let q = g.new_process("q").unwrap();
        let c1 = g.new_channel("c1", ChannelKind::Queue).unwrap();
        let c2 = g.new_channel("c2", ChannelKind::Queue).unwrap();
        g.set_writer(c1, p).unwrap();
        g.set_reader(c1, q).unwrap();
        g.set_writer(c2, q).unwrap();
        g.set_reader(c2, p).unwrap();
        g.process_mut(p)
            .unwrap()
            .add_mode_with("m", Interval::point(1), |_| {});
        g.process_mut(q)
            .unwrap()
            .add_mode_with("m", Interval::point(1), |_| {});
        let a = GraphAnalysis::new(&g);
        assert!(!a.is_acyclic());
        assert_eq!(a.topological_order(), Err(ModelError::CyclicGraph));
        // The target is reached before the back-edge is traversed, so the acyclic
        // path latency (1 + 1) is still well defined.
        assert_eq!(
            LatencyAnalysis::new(&g).end_to_end(p, q),
            Ok(Interval::point(2))
        );
        // A cycle that lies strictly between source and target is reported.
        let r = g.new_process("r").unwrap();
        g.process_mut(r)
            .unwrap()
            .add_mode_with("m", Interval::point(1), |_| {});
        assert_eq!(
            LatencyAnalysis::new(&g).end_to_end(p, r),
            Err(ModelError::CyclicGraph)
        );
    }

    #[test]
    fn end_to_end_latency_sums_hulls() {
        let g = sdf_chain();
        let a = g.process_by_name("a").unwrap().id();
        let z = g.process_by_name("z").unwrap().id();
        assert_eq!(
            LatencyAnalysis::new(&g).end_to_end(a, z).unwrap(),
            Interval::point(4)
        );
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let g = sdf_chain();
        let a = g.process_by_name("a").unwrap().id();
        let z = g.process_by_name("z").unwrap().id();
        let err = LatencyAnalysis::new(&g).end_to_end(z, a).unwrap_err();
        assert!(matches!(err, ModelError::Validation(_)));
    }

    #[test]
    fn rate_consistency_produces_repetition_vector() {
        let g = sdf_chain();
        let a = g.process_by_name("a").unwrap().id();
        let m = g.process_by_name("m").unwrap().id();
        let z = g.process_by_name("z").unwrap().id();
        match RateConsistency::analyze(&g) {
            RateConsistency::Consistent { repetitions } => {
                // Balance: 2*r_a = 3*r_m and 1*r_m = 2*r_z  =>  r = (3, 2, 1).
                assert_eq!(repetitions[&a], 3);
                assert_eq!(repetitions[&m], 2);
                assert_eq!(repetitions[&z], 1);
            }
            other => panic!("expected consistency, got {other:?}"),
        }
    }

    #[test]
    fn interval_rates_are_not_applicable() {
        let mut b = GraphBuilder::new("intervals");
        let p = b.process("p").latency(Interval::point(1)).build().unwrap();
        let q = b.process("q").latency(Interval::point(1)).build().unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output(p, c, Interval::new(1, 2).unwrap())
            .unwrap();
        b.connect_input(c, q, Interval::point(1)).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(RateConsistency::analyze(&g), RateConsistency::NotApplicable);
    }

    #[test]
    fn inconsistent_rates_detected() {
        // Diamond with contradictory rates:
        // a -1-> c1 -1-> b -2-> c3 -1-> d
        // a -1-> c2 -1-> e -1-> c4 -1-> d   (d would need two different rates)
        let mut bld = GraphBuilder::new("inconsistent");
        let a = bld
            .process("a")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let b = bld
            .process("b")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let e = bld
            .process("e")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let d = bld
            .process("d")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let c1 = bld.channel("c1", ChannelKind::Queue).unwrap();
        let c2 = bld.channel("c2", ChannelKind::Queue).unwrap();
        let c3 = bld.channel("c3", ChannelKind::Queue).unwrap();
        let c4 = bld.channel("c4", ChannelKind::Queue).unwrap();
        bld.connect_output(a, c1, Interval::point(1)).unwrap();
        bld.connect_input(c1, b, Interval::point(1)).unwrap();
        bld.connect_output(a, c2, Interval::point(1)).unwrap();
        bld.connect_input(c2, e, Interval::point(1)).unwrap();
        bld.connect_output(b, c3, Interval::point(2)).unwrap();
        bld.connect_input(c3, d, Interval::point(1)).unwrap();
        bld.connect_output(e, c4, Interval::point(1)).unwrap();
        bld.connect_input(c4, d, Interval::point(1)).unwrap();
        let g = bld.finish().unwrap();
        assert_eq!(RateConsistency::analyze(&g), RateConsistency::Inconsistent);
    }

    #[test]
    fn disconnected_graphs_have_multiple_components() {
        let mut b = GraphBuilder::new("two");
        b.process("x").latency(Interval::point(1)).build().unwrap();
        b.process("y").latency(Interval::point(1)).build().unwrap();
        let g = b.finish().unwrap();
        assert_eq!(GraphAnalysis::new(&g).component_count(), 2);
    }
}
