//! # spi-model
//!
//! An executable implementation of the **SPI (System Property Intervals) model** of
//! computation, the communicating-process representation used as the substrate of
//! *"Representation of Function Variants for Embedded System Optimization and Synthesis"*
//! (Richter, Ziegenbein, Ernst, Thiele, Teich — DAC 1999) and defined in the companion
//! papers (Codes/CASHE'98, ICCAD'98).
//!
//! A system is a set of concurrent **processes** communicating over unidirectional
//! **channels** that are either FIFO-ordered queues (destructive read) or registers
//! (destructive write). Processes are modeled only by their abstract external behaviour:
//!
//! * the **amount** of data consumed/produced per execution (as [`Interval`]s),
//! * the execution **latency** (as an [`Interval`]),
//! * optional **process modes** capturing parameter correlation ([`ProcessMode`]),
//! * **virtual mode tags** attached to produced tokens ([`Tag`], [`TagSet`]),
//! * an **activation function** mapping input-token predicates to modes
//!   ([`ActivationFunction`], [`Predicate`]).
//!
//! The model graph is bipartite: edges connect processes to channels only
//! ([`SpiGraph`] enforces this and the degree restrictions of the paper).
//!
//! # Example
//!
//! Building the example of Figure 1 of the paper (`p1 → c1 → p2 → c2 → p3`):
//!
//! ```rust
//! use spi_model::{GraphBuilder, ChannelKind, Interval, ModeSpec};
//!
//! # fn main() -> Result<(), spi_model::ModelError> {
//! let mut b = GraphBuilder::new("figure1");
//! let p1 = b.process("p1").latency(Interval::point(1)).build()?;
//! let p2 = b.process("p2").latency(Interval::new(3, 5)?).build()?;
//! let p3 = b.process("p3").latency(Interval::point(3)).build()?;
//! let c1 = b.channel("c1", ChannelKind::Queue)?;
//! let c2 = b.channel("c2", ChannelKind::Queue)?;
//! b.connect_output(p1, c1, Interval::point(2))?;
//! b.connect_input(c1, p2, Interval::new(1, 3)?)?;
//! b.connect_output(p2, c2, Interval::new(2, 5)?)?;
//! b.connect_input(c2, p3, Interval::point(1))?;
//! let graph = b.finish()?;
//! assert_eq!(graph.process_count(), 3);
//! assert_eq!(graph.channel_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod activation;
pub mod analysis;
pub mod builder;
pub mod channel;
pub mod digest;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interval;
pub mod introspect;
pub mod json;
pub mod mode;
pub mod process;
pub mod tag;
pub mod timing;
pub mod token;

pub use activation::{ActivationFunction, ActivationRule, ChannelView, Predicate};
pub use analysis::{GraphAnalysis, LatencyAnalysis, RateConsistency};
pub use builder::{GraphBuilder, ModeSpec, ProcessBuilder};
pub use channel::{Channel, ChannelKind};
pub use digest::{digest_bytes, digest_json, Digest};
pub use error::ModelError;
pub use graph::{Edge, EdgeDirection, GraphWatermark, NodeRef, SpiGraph};
pub use ids::{
    BuildSymHasher, ChannelId, IdRemap, Interner, ModeId, PortId, ProcessId, Sym, SymHasher,
};
pub use interval::Interval;
pub use introspect::{GraphEdge, GraphNode, GraphSnapshot};
pub use json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};
pub use mode::{ProcessMode, ProductionSpec};
pub use process::Process;
pub use tag::{Tag, TagSet};
pub use timing::{LatencyConstraint, TimeValue, TimingConstraint, TimingReport};
pub use token::Token;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
