//! Strongly-typed identifiers for the entities of an SPI model.
//!
//! Each identifier is a small newtype over `u32` ([C-NEWTYPE]): confusing a
//! [`ProcessId`] with a [`ChannelId`] is a compile-time error. Identifiers are
//! allocated by [`crate::SpiGraph`] (or the [`crate::GraphBuilder`]) and remain
//! stable for the lifetime of the graph even when other nodes are removed.
//!
//! Entity *names* (interfaces, clusters, processes, channels) are interned
//! into copyable [`Sym`] symbols by the process-global [`Interner`], so the
//! variant-space hot paths compare and hash `u32`s instead of strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Normally identifiers are allocated by the graph; this constructor exists
            /// for deserialization, test fixtures and id-remapping during graph merges.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric index backing this identifier.
            pub const fn index(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> $name {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a process node in an SPI graph.
    ProcessId,
    "P"
);
define_id!(
    /// Identifier of a channel node in an SPI graph.
    ChannelId,
    "C"
);
define_id!(
    /// Identifier of a process mode, unique within its owning process.
    ModeId,
    "m"
);
define_id!(
    /// Identifier of a cluster/interface port (used by the variants layer).
    PortId,
    "port"
);

// --- dense id remapping --------------------------------------------------------------

/// A dense old-id → new-id remap table, indexed by the old id's raw value.
///
/// This is the translation record a graph merge produces: node ids of the
/// merged-in graph are dense small integers, so the mapping is a flat `Vec`
/// probe instead of a tree walk — `O(n)` to build with no per-entry
/// allocation, `O(1)` to query. Entries for ids the merge never saw (e.g.
/// ids of removed nodes) answer `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdRemap<Id> {
    entries: Vec<Option<Id>>,
}

/// Manual impl: the derived one would demand `Id: Default` for no reason.
impl<Id> Default for IdRemap<Id> {
    fn default() -> Self {
        IdRemap {
            entries: Vec::new(),
        }
    }
}

impl<Id: Copy + Into<u32> + From<u32>> IdRemap<Id> {
    /// An empty remap table.
    pub fn new() -> Self {
        IdRemap {
            entries: Vec::new(),
        }
    }

    /// An empty table pre-sized for old ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IdRemap {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Records `old → new`, growing the table as needed.
    pub fn insert(&mut self, old: Id, new: Id) {
        let index = old.into() as usize;
        if self.entries.len() <= index {
            self.entries.resize(index + 1, None);
        }
        self.entries[index] = Some(new);
    }

    /// The new id recorded for `old`, if any.
    pub fn get(&self, old: &Id) -> Option<&Id> {
        self.entries.get((*old).into() as usize)?.as_ref()
    }

    /// Number of recorded mappings.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|entry| entry.is_some()).count()
    }

    /// Whether no mapping has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|entry| entry.is_none())
    }

    /// Iterates the recorded `(old, new)` pairs in ascending old-id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, Id)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(index, entry)| entry.map(|new| (Id::from(index as u32), new)))
    }
}

impl<Id: Copy + Into<u32> + From<u32>> std::ops::Index<&Id> for IdRemap<Id> {
    type Output = Id;

    fn index(&self, old: &Id) -> &Id {
        self.get(old).expect("id not present in the merge map")
    }
}

// --- interned name symbols ---------------------------------------------------------

/// An interned name: a copyable `u32` handle to a string in the process-global
/// [`Interner`].
///
/// Two `Sym`s compare equal iff they were interned from equal strings, so
/// equality and hashing are integer operations. The derived `Ord` follows
/// *interning order* (stable within a process run, **not** lexicographic);
/// order by [`Sym::as_str`] when name order matters.
///
/// Across process boundaries a `Sym` travels as its **resolved string** and
/// is re-interned on arrival — see the [`crate::json::ToJson`] /
/// [`crate::json::FromJson`] impls, which define the representation the real
/// serde swap must keep. The raw index is never persisted: it is a
/// process-local interner slot that would alias an unrelated name (or
/// nothing) in another run.
///
/// ```rust
/// use spi_model::Sym;
///
/// let a = Sym::intern("interface1");
/// let b = Sym::intern("interface1");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "interface1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// Interns `name` in the global [`Interner`] and returns its symbol.
    pub fn intern(name: &str) -> Sym {
        Interner::intern(name)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        Interner::resolve(self)
    }

    /// Raw index of the symbol in the global table.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(name: &str) -> Sym {
        Sym::intern(name)
    }
}

impl From<&String> for Sym {
    fn from(name: &String) -> Sym {
        Sym::intern(name)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A [`std::hash::Hasher`] for [`Sym`] keys: one Fibonacci multiply of the
/// 32-bit interner index. Symbol-keyed tables sit on the flattening hot path
/// (`SpiGraph::merge_disjoint` inserts two entries per spliced node, every
/// name lookup probes once), where the default SipHash costs more than the
/// probe itself; a multiplicative hash of an already-unique small integer
/// disperses the upper bits just as well at a fraction of the cost.
#[derive(Clone, Copy, Default)]
pub struct SymHasher {
    state: u64,
}

impl std::hash::Hasher for SymHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (never hit by `Sym`, which hashes via `write_u32`).
        for &byte in bytes {
            self.state = (self.state ^ u64::from(byte)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.state = u64::from(value).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// `BuildHasher` for [`SymHasher`]; use as
/// `HashMap<Sym, _, BuildSymHasher>::default()`.
#[derive(Clone, Copy, Default)]
pub struct BuildSymHasher;

impl std::hash::BuildHasher for BuildSymHasher {
    type Hasher = SymHasher;

    fn build_hasher(&self) -> SymHasher {
        SymHasher::default()
    }
}

struct InternerTable {
    lookup: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<InternerTable> {
    static TABLE: OnceLock<RwLock<InternerTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(InternerTable {
            lookup: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

std::thread_local! {
    /// Per-thread mirror of the global `strings` table. Interned strings are
    /// `&'static` and a symbol's index never changes, so stale entries are
    /// impossible — a miss only means this thread has not yet seen a recently
    /// interned symbol and must refresh from the global table. This keeps the
    /// hot [`Sym::as_str`] path free of lock traffic: the parallel enumeration
    /// and search paths resolve `O(interfaces)` symbols per combination, and an
    /// `RwLock` acquisition per resolve would serialize the very paths the
    /// interner exists to speed up.
    static RESOLVE_CACHE: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The process-global symbol table backing [`Sym`].
///
/// Interned strings live for the rest of the process (one leaked allocation
/// per *distinct* name), which is what makes [`Sym::as_str`] a borrow-free
/// `&'static str` and keeps `Sym` `Copy` + `Send` + `Sync` — the properties
/// the parallel enumeration paths rely on. Systems intern a bounded set of
/// entity names, so the table stays small.
pub struct Interner;

impl Interner {
    /// Looks `name` up **without** interning it: returns its symbol only if some
    /// earlier [`Interner::intern`] call already created one.
    ///
    /// This is the negative-lookup fast path for name-keyed tables (see
    /// `SpiGraph::process_by_name`): a name nothing has interned cannot key any
    /// `Sym`-indexed map, so the query can answer "absent" without growing the
    /// global table with, e.g., misspelled names from user input.
    pub fn get(name: &str) -> Option<Sym> {
        interner()
            .read()
            .expect("interner poisoned")
            .lookup
            .get(name)
            .map(|&index| Sym(index))
    }

    /// Interns `name`, returning the existing symbol if it is already known.
    pub fn intern(name: &str) -> Sym {
        if let Some(&index) = interner()
            .read()
            .expect("interner poisoned")
            .lookup
            .get(name)
        {
            return Sym(index);
        }
        let mut table = interner().write().expect("interner poisoned");
        if let Some(&index) = table.lookup.get(name) {
            return Sym(index);
        }
        let owned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let index = u32::try_from(table.strings.len()).expect("interner overflow");
        table.strings.push(owned);
        table.lookup.insert(owned, index);
        Sym(index)
    }

    /// Resolves a symbol back to its string (lock-free after the first
    /// resolve of a symbol on each thread; see `RESOLVE_CACHE`).
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this process's interner (possible
    /// only by deserializing a raw symbol from another run).
    pub fn resolve(sym: Sym) -> &'static str {
        RESOLVE_CACHE.with_borrow_mut(|cache| {
            if let Some(&name) = cache.get(sym.0 as usize) {
                return name;
            }
            let table = interner().read().expect("interner poisoned");
            cache.clear();
            cache.extend_from_slice(&table.strings);
            table.strings[sym.0 as usize]
        })
    }

    /// Number of distinct names interned so far.
    pub fn len() -> usize {
        interner().read().expect("interner poisoned").strings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn interning_is_idempotent_and_copyable() {
        let a = Sym::intern("spi_model::ids::tests::alpha");
        let b = Sym::intern("spi_model::ids::tests::alpha");
        let c = Sym::intern("spi_model::ids::tests::beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let copied = a; // Copy, no clone needed
        assert_eq!(copied.as_str(), "spi_model::ids::tests::alpha");
        assert_eq!(a.to_string(), "spi_model::ids::tests::alpha");
    }

    #[test]
    fn interner_is_thread_safe() {
        let symbols: Vec<Sym> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Sym::intern("spi_model::ids::tests::shared")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(symbols.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sym_converts_from_strings() {
        let from_str: Sym = "spi_model::ids::tests::conv".into();
        let owned = String::from("spi_model::ids::tests::conv");
        let from_string: Sym = (&owned).into();
        assert_eq!(from_str, from_string);
        assert_eq!(from_str.as_ref(), owned.as_str());
    }

    #[test]
    fn ids_are_distinct_types() {
        // Would not compile if the newtypes collapsed into the same type.
        fn takes_process(_: ProcessId) {}
        fn takes_channel(_: ChannelId) {}
        takes_process(ProcessId::new(1));
        takes_channel(ChannelId::new(1));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ProcessId::new(3).to_string(), "P3");
        assert_eq!(ChannelId::new(0).to_string(), "C0");
        assert_eq!(ModeId::new(2).to_string(), "m2");
        assert_eq!(PortId::new(9).to_string(), "port9");
    }

    #[test]
    fn ids_order_by_index() {
        let mut set = BTreeSet::new();
        set.insert(ProcessId::new(4));
        set.insert(ProcessId::new(1));
        set.insert(ProcessId::new(3));
        let order: Vec<u32> = set.into_iter().map(u32::from).collect();
        assert_eq!(order, vec![1, 3, 4]);
    }

    #[test]
    fn index_roundtrips_through_new() {
        for raw in [0_u32, 1, 42, u32::MAX] {
            assert_eq!(ProcessId::new(raw).index(), raw);
            assert_eq!(ModeId::new(raw).index(), raw);
        }
    }
}
