//! Strongly-typed identifiers for the entities of an SPI model.
//!
//! Each identifier is a small newtype over `u32` ([C-NEWTYPE]): confusing a
//! [`ProcessId`] with a [`ChannelId`] is a compile-time error. Identifiers are
//! allocated by [`crate::SpiGraph`] (or the [`crate::GraphBuilder`]) and remain
//! stable for the lifetime of the graph even when other nodes are removed.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Normally identifiers are allocated by the graph; this constructor exists
            /// for deserialization, test fixtures and id-remapping during graph merges.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric index backing this identifier.
            pub const fn index(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a process node in an SPI graph.
    ProcessId,
    "P"
);
define_id!(
    /// Identifier of a channel node in an SPI graph.
    ChannelId,
    "C"
);
define_id!(
    /// Identifier of a process mode, unique within its owning process.
    ModeId,
    "m"
);
define_id!(
    /// Identifier of a cluster/interface port (used by the variants layer).
    PortId,
    "port"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_distinct_types() {
        // Would not compile if the newtypes collapsed into the same type.
        fn takes_process(_: ProcessId) {}
        fn takes_channel(_: ChannelId) {}
        takes_process(ProcessId::new(1));
        takes_channel(ChannelId::new(1));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ProcessId::new(3).to_string(), "P3");
        assert_eq!(ChannelId::new(0).to_string(), "C0");
        assert_eq!(ModeId::new(2).to_string(), "m2");
        assert_eq!(PortId::new(9).to_string(), "port9");
    }

    #[test]
    fn ids_order_by_index() {
        let mut set = BTreeSet::new();
        set.insert(ProcessId::new(4));
        set.insert(ProcessId::new(1));
        set.insert(ProcessId::new(3));
        let order: Vec<u32> = set.into_iter().map(u32::from).collect();
        assert_eq!(order, vec![1, 3, 4]);
    }

    #[test]
    fn index_roundtrips_through_new() {
        for raw in [0_u32, 1, 42, u32::MAX] {
            assert_eq!(ProcessId::new(raw).index(), raw);
            assert_eq!(ModeId::new(raw).index(), raw);
        }
    }
}
