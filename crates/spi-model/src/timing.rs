//! Timing constraints and their compliance check.
//!
//! The SPI companion papers define timing constraints on paths through the model graph
//! together with a constructive method to check compliance. This module provides the
//! constraint vocabulary used by the synthesis layer:
//!
//! * **latency constraints** bound the end-to-end latency between two processes,
//! * **rate constraints** bound how much time may elapse between consecutive
//!   executions of a process (e.g. a video pipeline must keep up with the frame rate).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::analysis::LatencyAnalysis;
use crate::error::ModelError;
use crate::graph::SpiGraph;
use crate::ids::ProcessId;
use crate::interval::Interval;

/// Abstract model time. The unit is whatever the model chose (the paper uses
/// milliseconds); all analyses are unit-agnostic.
pub type TimeValue = u64;

/// A latency constraint on the path between two processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConstraint {
    /// First process of the constrained path.
    pub from: ProcessId,
    /// Last process of the constrained path.
    pub to: ProcessId,
    /// Maximum admissible worst-case latency.
    pub max: TimeValue,
}

/// A timing constraint attached to an SPI model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingConstraint {
    /// End-to-end latency bound between two processes.
    Latency(LatencyConstraint),
    /// The named process must be able to execute at least once every `period` time units
    /// (its worst-case latency must not exceed the period).
    Period {
        /// Constrained process.
        process: ProcessId,
        /// Maximum admissible execution latency / minimum inter-arrival time.
        period: TimeValue,
    },
}

impl TimingConstraint {
    /// Convenience constructor for a latency constraint.
    pub fn latency(from: ProcessId, to: ProcessId, max: TimeValue) -> Self {
        TimingConstraint::Latency(LatencyConstraint { from, to, max })
    }

    /// Convenience constructor for a period constraint.
    pub fn period(process: ProcessId, period: TimeValue) -> Self {
        TimingConstraint::Period { process, period }
    }
}

impl fmt::Display for TimingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingConstraint::Latency(c) => {
                write!(f, "latency({} -> {}) <= {}", c.from, c.to, c.max)
            }
            TimingConstraint::Period { process, period } => {
                write!(f, "period({process}) <= {period}")
            }
        }
    }
}

/// Result of checking one constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintCheck {
    /// The constraint that was checked.
    pub constraint: TimingConstraint,
    /// The analysed worst-case value (path latency or execution latency).
    pub worst_case: TimeValue,
    /// The analysed best-case value.
    pub best_case: TimeValue,
    /// Whether the constraint is met.
    pub satisfied: bool,
}

/// Compliance report over a set of constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    checks: Vec<ConstraintCheck>,
}

impl TimingReport {
    /// Individual constraint results.
    pub fn checks(&self) -> &[ConstraintCheck] {
        &self.checks
    }

    /// Returns `true` if every constraint is satisfied.
    pub fn all_satisfied(&self) -> bool {
        self.checks.iter().all(|c| c.satisfied)
    }

    /// Number of violated constraints.
    pub fn violations(&self) -> usize {
        self.checks.iter().filter(|c| !c.satisfied).count()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for check in &self.checks {
            writeln!(
                f,
                "{}: worst-case {} — {}",
                check.constraint,
                check.worst_case,
                if check.satisfied { "ok" } else { "VIOLATED" }
            )?;
        }
        Ok(())
    }
}

/// Checks all constraints against the worst-case latency analysis of `graph`.
///
/// # Errors
///
/// Returns [`ModelError::CyclicGraph`] if a latency constraint spans a cyclic region of
/// the graph, or [`ModelError::UnknownProcess`] / [`ModelError::NoModes`] for malformed
/// constraints.
pub fn check_constraints(
    graph: &SpiGraph,
    constraints: &[TimingConstraint],
) -> Result<TimingReport, ModelError> {
    let analysis = LatencyAnalysis::new(graph);
    let mut report = TimingReport::default();
    for constraint in constraints {
        let (interval, max) = match constraint {
            TimingConstraint::Latency(c) => {
                let path = analysis.end_to_end(c.from, c.to)?;
                (path, c.max)
            }
            TimingConstraint::Period { process, period } => {
                let p = graph
                    .process(*process)
                    .ok_or(ModelError::UnknownProcess(*process))?;
                (p.latency_hull()?, *period)
            }
        };
        report.checks.push(ConstraintCheck {
            constraint: *constraint,
            worst_case: interval.hi(),
            best_case: interval.lo(),
            satisfied: interval.hi() <= max,
        });
    }
    Ok(report)
}

/// Returns the worst-case end-to-end latency between two processes as an [`Interval`].
///
/// This is a convenience wrapper over [`LatencyAnalysis::end_to_end`].
///
/// # Errors
///
/// See [`LatencyAnalysis::end_to_end`].
pub fn end_to_end_latency(
    graph: &SpiGraph,
    from: ProcessId,
    to: ProcessId,
) -> Result<Interval, ModelError> {
    LatencyAnalysis::new(graph).end_to_end(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::channel::ChannelKind;

    fn pipeline() -> (SpiGraph, ProcessId, ProcessId, ProcessId) {
        let mut b = GraphBuilder::new("pipe");
        let a = b.process("a").latency(Interval::point(1)).build().unwrap();
        let m = b
            .process("m")
            .latency(Interval::new(3, 5).unwrap())
            .build()
            .unwrap();
        let z = b.process("z").latency(Interval::point(3)).build().unwrap();
        let c1 = b.channel("c1", ChannelKind::Queue).unwrap();
        let c2 = b.channel("c2", ChannelKind::Queue).unwrap();
        b.connect_output(a, c1, Interval::point(1)).unwrap();
        b.connect_input(c1, m, Interval::point(1)).unwrap();
        b.connect_output(m, c2, Interval::point(1)).unwrap();
        b.connect_input(c2, z, Interval::point(1)).unwrap();
        (b.finish().unwrap(), a, m, z)
    }

    #[test]
    fn latency_constraint_satisfied_and_violated() {
        let (g, a, _, z) = pipeline();
        // Worst-case path latency is 1 + 5 + 3 = 9.
        let report = check_constraints(&g, &[TimingConstraint::latency(a, z, 9)]).unwrap();
        assert!(report.all_satisfied());
        assert_eq!(report.checks()[0].worst_case, 9);
        assert_eq!(report.checks()[0].best_case, 7);

        let report = check_constraints(&g, &[TimingConstraint::latency(a, z, 8)]).unwrap();
        assert!(!report.all_satisfied());
        assert_eq!(report.violations(), 1);
    }

    #[test]
    fn period_constraint_uses_latency_hull() {
        let (g, _, m, _) = pipeline();
        let ok = check_constraints(&g, &[TimingConstraint::period(m, 5)]).unwrap();
        assert!(ok.all_satisfied());
        let bad = check_constraints(&g, &[TimingConstraint::period(m, 4)]).unwrap();
        assert!(!bad.all_satisfied());
    }

    #[test]
    fn unknown_process_is_reported() {
        let (g, a, _, _) = pipeline();
        let err =
            check_constraints(&g, &[TimingConstraint::period(ProcessId::new(99), 10)]).unwrap_err();
        assert!(matches!(err, ModelError::UnknownProcess(_)));
        let err = check_constraints(&g, &[TimingConstraint::latency(a, ProcessId::new(99), 10)])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownProcess(_)));
    }

    #[test]
    fn report_display_mentions_violations() {
        let (g, a, _, z) = pipeline();
        let report = check_constraints(&g, &[TimingConstraint::latency(a, z, 1)]).unwrap();
        assert!(report.to_string().contains("VIOLATED"));
    }
}
