//! Ergonomic construction of SPI graphs.
//!
//! [`GraphBuilder`] wraps [`SpiGraph`] with a fluent API that covers the common cases:
//! single-mode processes described only by a latency, multi-mode processes described by
//! [`ModeSpec`]s, and convenience connection methods that wire the topology and the data
//! rates in one call. Processes without an explicit activation function receive a
//! data-driven default (each mode is activated when its declared consumption is
//! available) when [`GraphBuilder::finish`] is called.

use std::collections::BTreeSet;

use crate::activation::{ActivationFunction, ActivationRule, Predicate};
use crate::channel::ChannelKind;
use crate::error::ModelError;
use crate::graph::SpiGraph;
use crate::ids::{ChannelId, ProcessId};
use crate::interval::Interval;
use crate::mode::ProductionSpec;
use crate::tag::TagSet;

/// Declarative description of one process mode used with [`ProcessBuilder::mode`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSpec {
    name: String,
    latency: Interval,
    consumption: Vec<(ChannelId, Interval)>,
    production: Vec<(ChannelId, Interval, TagSet)>,
}

impl ModeSpec {
    /// Creates a mode spec with the given name and latency.
    pub fn new(name: impl Into<String>, latency: Interval) -> Self {
        ModeSpec {
            name: name.into(),
            latency,
            consumption: Vec::new(),
            production: Vec::new(),
        }
    }

    /// Declares consumption of `rate` tokens from `channel` per execution.
    pub fn consume(mut self, channel: ChannelId, rate: impl Into<Interval>) -> Self {
        self.consumption.push((channel, rate.into()));
        self
    }

    /// Declares production of `rate` untagged tokens on `channel` per execution.
    pub fn produce(mut self, channel: ChannelId, rate: impl Into<Interval>) -> Self {
        self.production.push((channel, rate.into(), TagSet::new()));
        self
    }

    /// Declares production of `rate` tokens on `channel`, each carrying `tags`.
    pub fn produce_tagged(
        mut self,
        channel: ChannelId,
        rate: impl Into<Interval>,
        tags: TagSet,
    ) -> Self {
        self.production.push((channel, rate.into(), tags));
        self
    }

    /// Mode name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mode latency.
    pub fn latency(&self) -> Interval {
        self.latency
    }
}

/// Builder for a single process, obtained from [`GraphBuilder::process`].
#[derive(Debug)]
pub struct ProcessBuilder<'a> {
    builder: &'a mut GraphBuilder,
    name: String,
    default_latency: Option<Interval>,
    modes: Vec<ModeSpec>,
    activation: Option<ActivationFunction>,
    is_virtual: bool,
}

impl<'a> ProcessBuilder<'a> {
    /// Declares the process as single-mode with the given execution latency.
    pub fn latency(mut self, latency: Interval) -> Self {
        self.default_latency = Some(latency);
        self
    }

    /// Adds an explicit mode.
    pub fn mode(mut self, spec: ModeSpec) -> Self {
        self.modes.push(spec);
        self
    }

    /// Provides an explicit activation function. Mode ids are assigned in the order
    /// modes were declared, starting at zero.
    pub fn activation(mut self, activation: ActivationFunction) -> Self {
        self.activation = Some(activation);
        self
    }

    /// Marks the process as part of the environment model.
    pub fn environment(mut self) -> Self {
        self.is_virtual = true;
        self
    }

    /// Registers the process in the graph and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Validation`] if neither a latency nor any mode was
    /// declared, or [`ModelError::DuplicateName`] if the name is taken.
    pub fn build(self) -> Result<ProcessId, ModelError> {
        if self.default_latency.is_none() && self.modes.is_empty() {
            return Err(ModelError::Validation(format!(
                "process `{}` needs a latency or at least one mode",
                self.name
            )));
        }
        let id = self.builder.graph.new_process(self.name)?;
        let process = self
            .builder
            .graph
            .process_mut(id)
            .expect("freshly created process");
        if let Some(latency) = self.default_latency {
            process.add_mode_with("m0", latency, |_| {});
        }
        for spec in self.modes {
            process.add_mode_with(spec.name, spec.latency, |mode| {
                for (channel, rate) in &spec.consumption {
                    mode.set_consumption(*channel, *rate);
                }
                for (channel, rate, tags) in &spec.production {
                    mode.set_production(*channel, ProductionSpec::tagged(*rate, tags.clone()));
                }
            });
        }
        if let Some(activation) = self.activation {
            process.set_activation(activation);
        } else {
            self.builder.auto_activation.insert(id);
        }
        if self.is_virtual {
            process.set_virtual(true);
        }
        Ok(id)
    }
}

/// Fluent builder producing a validated [`SpiGraph`].
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: SpiGraph,
    auto_activation: BTreeSet<ProcessId>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: SpiGraph::new(name),
            auto_activation: BTreeSet::new(),
        }
    }

    /// Starts the declaration of a new process.
    pub fn process(&mut self, name: impl Into<String>) -> ProcessBuilder<'_> {
        ProcessBuilder {
            builder: self,
            name: name.into(),
            default_latency: None,
            modes: Vec::new(),
            activation: None,
            is_virtual: false,
        }
    }

    /// Adds a channel of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if the name is taken.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        kind: ChannelKind,
    ) -> Result<ChannelId, ModelError> {
        self.graph.new_channel(name, kind)
    }

    /// Wires `process -> channel` and records production of `rate` untagged tokens per
    /// execution on every mode that does not already declare production on `channel`.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (unknown nodes, second writer).
    pub fn connect_output(
        &mut self,
        process: ProcessId,
        channel: ChannelId,
        rate: Interval,
    ) -> Result<(), ModelError> {
        self.connect_output_tagged(process, channel, rate, TagSet::new())
    }

    /// Like [`connect_output`](Self::connect_output) but produced tokens carry `tags`.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (unknown nodes, second writer).
    pub fn connect_output_tagged(
        &mut self,
        process: ProcessId,
        channel: ChannelId,
        rate: Interval,
        tags: TagSet,
    ) -> Result<(), ModelError> {
        self.graph.set_writer(channel, process)?;
        let proc = self
            .graph
            .process_mut(process)
            .ok_or(ModelError::UnknownProcess(process))?;
        for mode in proc.modes_mut() {
            if mode.production(channel).is_none() {
                mode.set_production(channel, ProductionSpec::tagged(rate, tags.clone()));
            }
        }
        Ok(())
    }

    /// Wires `channel -> process` and records consumption of `rate` tokens per execution
    /// on every mode that does not already declare consumption on `channel`.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (unknown nodes, second reader).
    pub fn connect_input(
        &mut self,
        channel: ChannelId,
        process: ProcessId,
        rate: Interval,
    ) -> Result<(), ModelError> {
        self.graph.set_reader(channel, process)?;
        let proc = self
            .graph
            .process_mut(process)
            .ok_or(ModelError::UnknownProcess(process))?;
        for mode in proc.modes_mut() {
            if mode.consumption(channel) == Interval::zero() {
                mode.set_consumption(channel, rate);
            }
        }
        Ok(())
    }

    /// Wires `process -> channel` without touching mode rates (rates must have been
    /// declared in the [`ModeSpec`]s).
    ///
    /// # Errors
    ///
    /// Propagates graph errors (unknown nodes, second writer).
    pub fn wire_output(
        &mut self,
        process: ProcessId,
        channel: ChannelId,
    ) -> Result<(), ModelError> {
        self.graph.set_writer(channel, process)
    }

    /// Wires `channel -> process` without touching mode rates.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (unknown nodes, second reader).
    pub fn wire_input(&mut self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        self.graph.set_reader(channel, process)
    }

    /// Direct access to the graph under construction (advanced use).
    pub fn graph_mut(&mut self) -> &mut SpiGraph {
        &mut self.graph
    }

    /// Finalizes the graph: synthesizes default data-driven activation functions for
    /// processes without an explicit one, then validates the whole graph.
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn finish(mut self) -> Result<SpiGraph, ModelError> {
        let auto = std::mem::take(&mut self.auto_activation);
        for process_id in auto {
            let process = self
                .graph
                .process_mut(process_id)
                .ok_or(ModelError::UnknownProcess(process_id))?;
            let mut af = ActivationFunction::new();
            for mode in process.modes() {
                let mut predicate = Predicate::All(Vec::new());
                for (channel, rate) in mode.consumptions() {
                    if rate.lo() > 0 {
                        predicate = predicate.and(Predicate::min_tokens(channel, rate.lo()));
                    }
                }
                af.push(ActivationRule::new(
                    format!("auto_{}", mode.name()),
                    predicate,
                    mode.id(),
                ));
            }
            if !af.is_empty() {
                process.set_activation(af);
            }
        }
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ChannelSnapshot;
    use crate::tag::Tag;

    fn figure1() -> SpiGraph {
        let mut b = GraphBuilder::new("figure1");
        let p1 = b.process("p1").latency(Interval::point(1)).build().unwrap();
        let c1 = b.channel("c1", ChannelKind::Queue).unwrap();
        let c2 = b.channel("c2", ChannelKind::Queue).unwrap();
        let p2 = b
            .process("p2")
            .mode(
                ModeSpec::new("m1", Interval::point(3))
                    .consume(c1, Interval::point(1))
                    .produce(c2, Interval::point(2)),
            )
            .mode(
                ModeSpec::new("m2", Interval::point(5))
                    .consume(c1, Interval::point(3))
                    .produce(c2, Interval::point(5)),
            )
            .build()
            .unwrap();
        let p3 = b.process("p3").latency(Interval::point(3)).build().unwrap();
        b.connect_output(p1, c1, Interval::point(2)).unwrap();
        b.wire_input(c1, p2).unwrap();
        b.wire_output(p2, c2).unwrap();
        b.connect_input(c2, p3, Interval::point(1)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn figure1_builds_and_validates() {
        let g = figure1();
        assert_eq!(g.process_count(), 3);
        assert_eq!(g.channel_count(), 2);
        let p2 = g.process_by_name("p2").unwrap();
        assert_eq!(p2.mode_count(), 2);
        assert_eq!(p2.latency_hull().unwrap(), Interval::new(3, 5).unwrap());
    }

    #[test]
    fn default_activation_is_data_driven() {
        let g = figure1();
        let p2 = g.process_by_name("p2").unwrap();
        let c1 = g.channel_by_name("c1").unwrap().id();
        // With one token available, only m1 (consumes 1) can be activated.
        let mut view = ChannelSnapshot::new();
        view.set(c1, 1, vec![Tag::new("anything")]);
        let selected = p2.activation().select(&view).unwrap();
        assert_eq!(p2.mode(selected).unwrap().name(), "m1");
        // With three tokens, rule order still prefers m1; both are enabled.
        view.set(c1, 3, vec![]);
        assert!(p2.activation().select(&view).is_some());
    }

    #[test]
    fn source_process_gets_unconditional_activation() {
        let g = figure1();
        let p1 = g.process_by_name("p1").unwrap();
        let selected = p1.activation().select(&ChannelSnapshot::new());
        assert_eq!(selected, Some(p1.modes()[0].id()));
    }

    #[test]
    fn process_without_latency_or_modes_is_rejected() {
        let mut b = GraphBuilder::new("bad");
        let result = b.process("empty").build();
        assert!(matches!(result, Err(ModelError::Validation(_))));
    }

    #[test]
    fn connect_output_tagged_adds_tags() {
        let mut b = GraphBuilder::new("tags");
        let p = b
            .process("src")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output_tagged(p, c, Interval::point(1), TagSet::singleton("V1"))
            .unwrap();
        let g = b.finish().unwrap();
        let spec = g.process(p).unwrap().modes()[0]
            .production(c)
            .unwrap()
            .clone();
        assert!(spec.tags.contains(&Tag::new("V1")));
    }

    #[test]
    fn environment_flag_is_applied() {
        let mut b = GraphBuilder::new("env");
        let user = b
            .process("PUser")
            .latency(Interval::point(0))
            .environment()
            .build()
            .unwrap();
        let g = b.finish().unwrap();
        assert!(g.process(user).unwrap().is_virtual());
    }

    #[test]
    fn finish_rejects_inconsistent_rates() {
        let mut b = GraphBuilder::new("broken");
        let c_far = ChannelId::new(42);
        let result = b
            .process("p")
            .mode(ModeSpec::new("m", Interval::point(1)).consume(c_far, Interval::point(1)))
            .build();
        // The process itself builds; the dangling rate is caught at finish().
        assert!(result.is_ok());
        assert!(b.finish().is_err());
    }
}
