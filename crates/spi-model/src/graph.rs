//! The SPI model graph.
//!
//! A model graph is a directed, bipartite graph of process nodes and channel nodes.
//! Channels are point-to-point: every channel has at most one writing process and at
//! most one reading process. [`SpiGraph`] owns the nodes, allocates identifiers, stores
//! the edge relation and offers validation and merging (the latter is the workhorse of
//! the variants layer when clusters are spliced into a parent graph).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::channel::{Channel, ChannelKind};
use crate::error::ModelError;
use crate::ids::{ChannelId, ProcessId};
use crate::process::Process;

/// Reference to either kind of node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// A process node.
    Process(ProcessId),
    /// A channel node.
    Channel(ChannelId),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Process(p) => write!(f, "{p}"),
            NodeRef::Channel(c) => write!(f, "{c}"),
        }
    }
}

/// Direction of a communication edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDirection {
    /// Process writes into channel.
    ProcessToChannel,
    /// Channel feeds a process.
    ChannelToProcess,
}

/// A communication edge of the bipartite graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// The process endpoint of the edge.
    pub process: ProcessId,
    /// The channel endpoint of the edge.
    pub channel: ChannelId,
    /// Whether the process writes to or reads from the channel.
    pub direction: EdgeDirection,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            EdgeDirection::ProcessToChannel => write!(f, "{} -> {}", self.process, self.channel),
            EdgeDirection::ChannelToProcess => write!(f, "{} -> {}", self.channel, self.process),
        }
    }
}

/// Identifier remapping produced by [`SpiGraph::merge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeMap {
    /// Old process id (in the merged-in graph) to new id (in the receiving graph).
    pub processes: BTreeMap<ProcessId, ProcessId>,
    /// Old channel id (in the merged-in graph) to new id (in the receiving graph).
    pub channels: BTreeMap<ChannelId, ChannelId>,
}

/// A directed, bipartite SPI model graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpiGraph {
    name: String,
    processes: BTreeMap<ProcessId, Process>,
    channels: BTreeMap<ChannelId, Channel>,
    writers: BTreeMap<ChannelId, ProcessId>,
    readers: BTreeMap<ChannelId, ProcessId>,
    next_process: u32,
    next_channel: u32,
}

impl SpiGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        SpiGraph {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Name of the modelled system.
    pub fn name(&self) -> &str {
        &self.name
    }

    // --- node management -----------------------------------------------------------

    /// Adds an empty process and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a process with the same name exists.
    pub fn new_process(&mut self, name: impl Into<String>) -> Result<ProcessId, ModelError> {
        let name = name.into();
        if self.process_by_name(&name).is_some() {
            return Err(ModelError::DuplicateName(name));
        }
        let id = ProcessId::new(self.next_process);
        self.next_process += 1;
        self.processes.insert(id, Process::new(id, name));
        Ok(id)
    }

    /// Adds a channel of the given kind and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a channel with the same name exists.
    pub fn new_channel(
        &mut self,
        name: impl Into<String>,
        kind: ChannelKind,
    ) -> Result<ChannelId, ModelError> {
        let name = name.into();
        if self.channel_by_name(&name).is_some() {
            return Err(ModelError::DuplicateName(name));
        }
        let id = ChannelId::new(self.next_channel);
        self.next_channel += 1;
        self.channels.insert(id, Channel::new(id, name, kind)?);
        Ok(id)
    }

    /// Inserts an already-built channel description, replacing the one created by
    /// [`new_channel`](Self::new_channel) (used to set capacities or initial tokens).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownChannel`] if the id does not exist.
    pub fn replace_channel(&mut self, channel: Channel) -> Result<(), ModelError> {
        let id = channel.id();
        if !self.channels.contains_key(&id) {
            return Err(ModelError::UnknownChannel(id));
        }
        self.channels.insert(id, channel);
        Ok(())
    }

    /// Looks up a process.
    pub fn process(&self, id: ProcessId) -> Option<&Process> {
        self.processes.get(&id)
    }

    /// Mutable access to a process.
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut Process> {
        self.processes.get_mut(&id)
    }

    /// Looks up a channel.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(&id)
    }

    /// Mutable access to a channel.
    pub fn channel_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(&id)
    }

    /// Finds a process by name.
    pub fn process_by_name(&self, name: &str) -> Option<&Process> {
        self.processes.values().find(|p| p.name() == name)
    }

    /// Finds a channel by name.
    pub fn channel_by_name(&self, name: &str) -> Option<&Channel> {
        self.channels.values().find(|c| c.name() == name)
    }

    /// Iterates over all processes in id order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Iterates over all channels in id order.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.values()
    }

    /// All process ids in order.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.processes.keys().copied().collect()
    }

    /// All channel ids in order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.channels.keys().copied().collect()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Removes a process and all edges incident to it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProcess`] if the id does not exist.
    pub fn remove_process(&mut self, id: ProcessId) -> Result<Process, ModelError> {
        let process = self
            .processes
            .remove(&id)
            .ok_or(ModelError::UnknownProcess(id))?;
        self.writers.retain(|_, p| *p != id);
        self.readers.retain(|_, p| *p != id);
        Ok(process)
    }

    /// Removes a channel and all edges incident to it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownChannel`] if the id does not exist.
    pub fn remove_channel(&mut self, id: ChannelId) -> Result<Channel, ModelError> {
        let channel = self
            .channels
            .remove(&id)
            .ok_or(ModelError::UnknownChannel(id))?;
        self.writers.remove(&id);
        self.readers.remove(&id);
        Ok(channel)
    }

    // --- edge management -----------------------------------------------------------

    /// Attaches `process` as the writer of `channel`.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown or the channel already has a writer.
    pub fn set_writer(&mut self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        self.check_nodes(channel, process)?;
        if self.writers.contains_key(&channel) {
            return Err(ModelError::ChannelHasWriter(channel));
        }
        self.writers.insert(channel, process);
        Ok(())
    }

    /// Attaches `process` as the reader of `channel`.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown or the channel already has a reader.
    pub fn set_reader(&mut self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        self.check_nodes(channel, process)?;
        if self.readers.contains_key(&channel) {
            return Err(ModelError::ChannelHasReader(channel));
        }
        self.readers.insert(channel, process);
        Ok(())
    }

    /// Detaches the writer of a channel, if any, and returns it.
    pub fn clear_writer(&mut self, channel: ChannelId) -> Option<ProcessId> {
        self.writers.remove(&channel)
    }

    /// Detaches the reader of a channel, if any, and returns it.
    pub fn clear_reader(&mut self, channel: ChannelId) -> Option<ProcessId> {
        self.readers.remove(&channel)
    }

    fn check_nodes(&self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        if !self.channels.contains_key(&channel) {
            return Err(ModelError::UnknownChannel(channel));
        }
        if !self.processes.contains_key(&process) {
            return Err(ModelError::UnknownProcess(process));
        }
        Ok(())
    }

    /// Writing process of a channel, if attached.
    pub fn writer_of(&self, channel: ChannelId) -> Option<ProcessId> {
        self.writers.get(&channel).copied()
    }

    /// Reading process of a channel, if attached.
    pub fn reader_of(&self, channel: ChannelId) -> Option<ProcessId> {
        self.readers.get(&channel).copied()
    }

    /// Channels read by a process (its input channels by topology).
    pub fn inputs_of(&self, process: ProcessId) -> Vec<ChannelId> {
        self.readers
            .iter()
            .filter(|(_, p)| **p == process)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Channels written by a process (its output channels by topology).
    pub fn outputs_of(&self, process: ProcessId) -> Vec<ChannelId> {
        self.writers
            .iter()
            .filter(|(_, p)| **p == process)
            .map(|(c, _)| *c)
            .collect()
    }

    /// All edges of the graph.
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges: Vec<Edge> = self
            .writers
            .iter()
            .map(|(c, p)| Edge {
                process: *p,
                channel: *c,
                direction: EdgeDirection::ProcessToChannel,
            })
            .chain(self.readers.iter().map(|(c, p)| Edge {
                process: *p,
                channel: *c,
                direction: EdgeDirection::ChannelToProcess,
            }))
            .collect();
        edges.sort_by_key(|e| {
            (
                e.channel,
                e.process,
                e.direction == EdgeDirection::ChannelToProcess,
            )
        });
        edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.writers.len() + self.readers.len()
    }

    /// Successor processes of a process (processes reading a channel this process writes).
    pub fn successors(&self, process: ProcessId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .outputs_of(process)
            .into_iter()
            .filter_map(|c| self.reader_of(c))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Predecessor processes of a process (processes writing a channel this process reads).
    pub fn predecessors(&self, process: ProcessId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .inputs_of(process)
            .into_iter()
            .filter_map(|c| self.writer_of(c))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    // --- validation ----------------------------------------------------------------

    /// Validates the whole graph.
    ///
    /// Checks performed:
    /// * every process is internally consistent ([`Process::validate`]);
    /// * every rate entry of every mode refers to a channel actually connected to the
    ///   process in the matching direction;
    /// * every activation predicate refers only to input channels of its process.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ModelError> {
        for process in self.processes.values() {
            process.validate()?;
            let inputs = self.inputs_of(process.id());
            let outputs = self.outputs_of(process.id());
            for mode in process.modes() {
                for (channel, _) in mode.consumptions() {
                    if !inputs.contains(&channel) {
                        return Err(ModelError::RateOnUnconnectedChannel {
                            process: process.id(),
                            channel,
                        });
                    }
                }
                for (channel, _) in mode.productions() {
                    if !outputs.contains(&channel) {
                        return Err(ModelError::RateOnUnconnectedChannel {
                            process: process.id(),
                            channel,
                        });
                    }
                }
            }
            for channel in process.activation().referenced_channels() {
                if !inputs.contains(&channel) {
                    return Err(ModelError::ActivationOnNonInput {
                        process: process.id(),
                        channel,
                    });
                }
            }
        }
        Ok(())
    }

    // --- merging -------------------------------------------------------------------

    /// Copies every node and edge of `other` into `self`, relabelling identifiers and
    /// prefixing node names with `prefix` (pass an empty string to keep names).
    ///
    /// Returns the identifier remapping so callers can rewire ports afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a prefixed name collides with an
    /// existing node name.
    pub fn merge(&mut self, other: &SpiGraph, prefix: &str) -> Result<MergeMap, ModelError> {
        let mut map = MergeMap::default();

        // Channels first so processes can have their references rewritten in one pass.
        for channel in other.channels.values() {
            let new_name = format!("{prefix}{}", channel.name());
            if self.channel_by_name(&new_name).is_some() {
                return Err(ModelError::DuplicateName(new_name));
            }
            let id = ChannelId::new(self.next_channel);
            self.next_channel += 1;
            self.channels
                .insert(id, channel.clone().with_id(id).with_name(new_name));
            map.channels.insert(channel.id(), id);
        }

        for process in other.processes.values() {
            let new_name = format!("{prefix}{}", process.name());
            if self.process_by_name(&new_name).is_some() {
                return Err(ModelError::DuplicateName(new_name));
            }
            let id = ProcessId::new(self.next_process);
            self.next_process += 1;
            let mut copied = process.clone().with_id(id).with_name(new_name);
            copied.remap_channels(&map.channels);
            self.processes.insert(id, copied);
            map.processes.insert(process.id(), id);
        }

        for (channel, process) in &other.writers {
            let c = map.channels[channel];
            let p = map.processes[process];
            self.writers.insert(c, p);
        }
        for (channel, process) in &other.readers {
            let c = map.channels[channel];
            let p = map.processes[process];
            self.readers.insert(c, p);
        }

        Ok(map)
    }

    /// Copies every node and edge of `other` into `self`, relabelling identifiers but
    /// keeping node names as they are — the fast path behind
    /// `spi_variants::Flattener`.
    ///
    /// Unlike [`merge`](Self::merge) this performs **no duplicate-name detection**
    /// (which is an `O(nodes_self × nodes_other)` scan): the caller must guarantee
    /// that every node name of `other` is absent from `self`. The variants layer
    /// establishes this once per cluster when a `Flattener` is built and then splices
    /// the same pre-renamed cluster graphs into fresh skeleton clones many times.
    /// Debug builds still assert disjointness.
    pub fn merge_disjoint(&mut self, other: &SpiGraph) -> MergeMap {
        let mut map = MergeMap::default();

        for channel in other.channels.values() {
            debug_assert!(
                self.channel_by_name(channel.name()).is_none(),
                "merge_disjoint: channel name `{}` already present",
                channel.name()
            );
            let id = ChannelId::new(self.next_channel);
            self.next_channel += 1;
            self.channels.insert(id, channel.clone().with_id(id));
            map.channels.insert(channel.id(), id);
        }

        for process in other.processes.values() {
            debug_assert!(
                self.process_by_name(process.name()).is_none(),
                "merge_disjoint: process name `{}` already present",
                process.name()
            );
            let id = ProcessId::new(self.next_process);
            self.next_process += 1;
            let mut copied = process.clone().with_id(id);
            copied.remap_channels(&map.channels);
            self.processes.insert(id, copied);
            map.processes.insert(process.id(), id);
        }

        for (channel, process) in &other.writers {
            self.writers
                .insert(map.channels[channel], map.processes[process]);
        }
        for (channel, process) in &other.readers {
            self.readers
                .insert(map.channels[channel], map.processes[process]);
        }

        map
    }
}

impl fmt::Display for SpiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SPI graph `{}`: {} processes, {} channels, {} edges",
            self.name,
            self.process_count(),
            self.channel_count(),
            self.edge_count()
        )?;
        for p in self.processes.values() {
            writeln!(f, "  {p}")?;
        }
        for c in self.channels.values() {
            let writer = self
                .writer_of(c.id())
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            let reader = self
                .reader_of(c.id())
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            writeln!(f, "  {c}: {writer} -> {reader}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::mode::ProductionSpec;

    fn chain() -> (SpiGraph, ProcessId, ProcessId, ChannelId) {
        let mut g = SpiGraph::new("chain");
        let p1 = g.new_process("p1").unwrap();
        let p2 = g.new_process("p2").unwrap();
        let c1 = g.new_channel("c1", ChannelKind::Queue).unwrap();
        g.set_writer(c1, p1).unwrap();
        g.set_reader(c1, p2).unwrap();
        g.process_mut(p1)
            .unwrap()
            .add_mode_with("m0", Interval::point(1), |m| {
                m.set_production(c1, ProductionSpec::amount(Interval::point(1)));
            });
        g.process_mut(p2)
            .unwrap()
            .add_mode_with("m0", Interval::point(2), |m| {
                m.set_consumption(c1, Interval::point(1));
            });
        (g, p1, p2, c1)
    }

    #[test]
    fn topology_queries() {
        let (g, p1, p2, c1) = chain();
        assert_eq!(g.writer_of(c1), Some(p1));
        assert_eq!(g.reader_of(c1), Some(p2));
        assert_eq!(g.outputs_of(p1), vec![c1]);
        assert_eq!(g.inputs_of(p2), vec![c1]);
        assert_eq!(g.successors(p1), vec![p2]);
        assert_eq!(g.predecessors(p2), vec![p1]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn point_to_point_enforced() {
        let (mut g, p1, _p2, c1) = chain();
        let p3 = g.new_process("p3").unwrap();
        assert_eq!(g.set_writer(c1, p3), Err(ModelError::ChannelHasWriter(c1)));
        assert_eq!(g.set_reader(c1, p3), Err(ModelError::ChannelHasReader(c1)));
        // Unknown nodes rejected.
        assert!(matches!(
            g.set_writer(ChannelId::new(99), p1),
            Err(ModelError::UnknownChannel(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = SpiGraph::new("dup");
        g.new_process("p").unwrap();
        assert_eq!(
            g.new_process("p"),
            Err(ModelError::DuplicateName("p".into()))
        );
        g.new_channel("c", ChannelKind::Queue).unwrap();
        assert_eq!(
            g.new_channel("c", ChannelKind::Register),
            Err(ModelError::DuplicateName("c".into()))
        );
    }

    #[test]
    fn validate_accepts_consistent_chain() {
        let (g, _, _, _) = chain();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validate_rejects_rate_on_unconnected_channel() {
        let (mut g, p1, _, _) = chain();
        let orphan = g.new_channel("orphan", ChannelKind::Queue).unwrap();
        g.process_mut(p1)
            .unwrap()
            .add_mode_with("bad", Interval::point(1), |m| {
                m.set_production(orphan, ProductionSpec::amount(Interval::point(1)));
            });
        assert!(matches!(
            g.validate(),
            Err(ModelError::RateOnUnconnectedChannel { .. })
        ));
    }

    #[test]
    fn validate_rejects_activation_on_non_input() {
        let (mut g, p1, _, c1) = chain();
        use crate::activation::{ActivationFunction, ActivationRule, Predicate};
        // p1 writes c1 but does not read it; predicating on it is invalid.
        let af = ActivationFunction::new().with_rule(ActivationRule::new(
            "bad",
            Predicate::min_tokens(c1, 1),
            crate::ids::ModeId::new(0),
        ));
        g.process_mut(p1).unwrap().set_activation(af);
        assert!(matches!(
            g.validate(),
            Err(ModelError::ActivationOnNonInput { .. })
        ));
    }

    #[test]
    fn remove_process_clears_edges() {
        let (mut g, p1, _, c1) = chain();
        g.remove_process(p1).unwrap();
        assert_eq!(g.writer_of(c1), None);
        assert!(g.process(p1).is_none());
        assert!(matches!(
            g.remove_process(p1),
            Err(ModelError::UnknownProcess(_))
        ));
    }

    #[test]
    fn remove_channel_clears_edges() {
        let (mut g, _, p2, c1) = chain();
        g.remove_channel(c1).unwrap();
        assert!(g.inputs_of(p2).is_empty());
        assert!(matches!(
            g.remove_channel(c1),
            Err(ModelError::UnknownChannel(_))
        ));
    }

    #[test]
    fn merge_relabels_and_rewires() {
        let (mut host, _, _, _) = chain();
        let (guest, gp1, gp2, gc1) = chain();
        let map = host.merge(&guest, "v1_").unwrap();
        assert_eq!(host.process_count(), 4);
        assert_eq!(host.channel_count(), 2);
        let new_c = map.channels[&gc1];
        assert_eq!(host.writer_of(new_c), Some(map.processes[&gp1]));
        assert_eq!(host.reader_of(new_c), Some(map.processes[&gp2]));
        // Rates were remapped to the new channel ids, so validation still holds.
        assert!(host.validate().is_ok());
        assert!(host.process_by_name("v1_p1").is_some());
    }

    #[test]
    fn merge_disjoint_matches_checked_merge() {
        let (mut checked_host, _, _, _) = chain();
        let mut fast_host = checked_host.clone();
        // Pre-rename the guest the way the variants layer does, then merge both ways.
        let (guest, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        renamed.merge(&guest, "v1_").unwrap();
        let checked_map = checked_host.merge(&renamed, "").unwrap();
        let fast_map = fast_host.merge_disjoint(&renamed);
        assert_eq!(checked_map, fast_map);
        assert_eq!(checked_host, fast_host);
        assert!(fast_host.validate().is_ok());
        assert!(fast_host.process_by_name("v1_p1").is_some());
    }

    #[test]
    fn merge_rejects_name_collision() {
        let (mut host, _, _, _) = chain();
        let (guest, _, _, _) = chain();
        assert!(matches!(
            host.merge(&guest, ""),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn display_lists_nodes() {
        let (g, _, _, _) = chain();
        let text = g.to_string();
        assert!(text.contains("`chain`"));
        assert!(text.contains("p1"));
        assert!(text.contains("c1"));
    }
}
