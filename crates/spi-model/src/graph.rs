//! The SPI model graph.
//!
//! A model graph is a directed, bipartite graph of process nodes and channel nodes.
//! Channels are point-to-point: every channel has at most one writing process and at
//! most one reading process. [`SpiGraph`] owns the nodes, allocates identifiers, stores
//! the edge relation and offers validation and merging (the latter is the workhorse of
//! the variants layer when clusters are spliced into a parent graph).
//!
//! # Storage layout
//!
//! Nodes live in **index-dense slabs**: `Vec<Option<Process>>` / `Vec<Option<Channel>>`
//! where a node's slot index *is* its id's raw value. Ids are allocated by pushing, a
//! removal leaves a `None` tombstone (so ids stay stable, exactly as the `BTreeMap`
//! generation of this type behaved), and iteration walks the slab in slot order —
//! which is id order, which is insertion order. The writer/reader edge relation is a
//! pair of `Vec<Option<ProcessId>>` parallel to the channel slab. This makes the two
//! operations the variants layer performs per enumerated variant — `clone`/`clone_from`
//! of a skeleton and [`merge_disjoint`](SpiGraph::merge_disjoint) of pre-renamed
//! clusters — flat `Vec` copies and appends instead of per-node tree splices.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::channel::{Channel, ChannelKind};
use crate::error::ModelError;
use crate::ids::{BuildSymHasher, ChannelId, IdRemap, Interner, ProcessId, Sym};
use crate::process::Process;

/// Reference to either kind of node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// A process node.
    Process(ProcessId),
    /// A channel node.
    Channel(ChannelId),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Process(p) => write!(f, "{p}"),
            NodeRef::Channel(c) => write!(f, "{c}"),
        }
    }
}

/// Direction of a communication edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDirection {
    /// Process writes into channel.
    ProcessToChannel,
    /// Channel feeds a process.
    ChannelToProcess,
}

/// A communication edge of the bipartite graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// The process endpoint of the edge.
    pub process: ProcessId,
    /// The channel endpoint of the edge.
    pub channel: ChannelId,
    /// Whether the process writes to or reads from the channel.
    pub direction: EdgeDirection,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            EdgeDirection::ProcessToChannel => write!(f, "{} -> {}", self.process, self.channel),
            EdgeDirection::ChannelToProcess => write!(f, "{} -> {}", self.channel, self.process),
        }
    }
}

/// Identifier remapping produced by [`SpiGraph::merge`] and
/// [`SpiGraph::merge_disjoint`].
///
/// Both sides are dense [`IdRemap`] tables — `O(1)` Vec probes, built in one
/// `O(n)` pass alongside the node append. When the merged-in graph is
/// tombstone-free (it never had a node removed), the new ids are exactly
/// `old + offset`, where the offset is the receiving slab's length before the
/// merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeMap {
    /// Old process id (in the merged-in graph) to new id (in the receiving graph).
    pub processes: IdRemap<ProcessId>,
    /// Old channel id (in the merged-in graph) to new id (in the receiving graph).
    pub channels: IdRemap<ChannelId>,
}

/// The symbol-keyed name indexes use the single-multiply [`SymHasher`] — the
/// maps sit on the flattening hot path, where SipHash would out-cost the probe.
type NameIndex<Id> = HashMap<Sym, Id, BuildSymHasher>;

/// A directed, bipartite SPI model graph.
///
/// See the [module docs](self) for the slab storage layout; the observable
/// id/iteration semantics (stable ids, insertion-order iteration) are
/// identical to the earlier `BTreeMap`-backed generation of this type.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct SpiGraph {
    name: String,
    /// Process slab: slot `i` holds the process with id `i`, `None` once it
    /// was removed. The slab never shrinks, so ids are stable and the next
    /// fresh id is always `processes.len()`.
    processes: Vec<Option<Process>>,
    /// Channel slab; see `processes`.
    channels: Vec<Option<Channel>>,
    /// Writer endpoint per channel slot (parallel to `channels`).
    writers: Vec<Option<ProcessId>>,
    /// Reader endpoint per channel slot (parallel to `channels`).
    readers: Vec<Option<ProcessId>>,
    /// Number of `Some` slots in `processes`, so `process_count` stays O(1).
    live_processes: u32,
    /// Number of `Some` slots in `channels`.
    live_channels: u32,
    /// Interned name → process id; the `resolve`-by-name index. Node names are
    /// immutable once inserted (`with_name` is pre-insertion only), so the
    /// index can never go stale; it is maintained by every insert/remove/merge.
    /// Being process-local (it holds `Sym`s) it is derived data that a future
    /// real deserializer must rebuild rather than transport.
    process_names: NameIndex<ProcessId>,
    /// Interned name → channel id; see `process_names`.
    channel_names: NameIndex<ChannelId>,
}

/// Hand-written so that `clone_from` actually reuses allocations: the
/// `Flattener` hot loop rebuilds a scratch graph from the skeleton once per
/// variant (`flatten_into` starts with `graph.clone_from(&skeleton)`), and the
/// field-wise `clone_from`s let the slabs recycle both the outer `Vec` buffers
/// and the per-node heap blocks (`Vec::clone_from` element-wise-clones into
/// the existing slots) instead of reallocating per combination.
impl Clone for SpiGraph {
    fn clone(&self) -> Self {
        SpiGraph {
            name: self.name.clone(),
            processes: self.processes.clone(),
            channels: self.channels.clone(),
            writers: self.writers.clone(),
            readers: self.readers.clone(),
            live_processes: self.live_processes,
            live_channels: self.live_channels,
            process_names: self.process_names.clone(),
            channel_names: self.channel_names.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.processes.clone_from(&source.processes);
        self.channels.clone_from(&source.channels);
        self.writers.clone_from(&source.writers);
        self.readers.clone_from(&source.readers);
        self.live_processes = source.live_processes;
        self.live_channels = source.live_channels;
        self.process_names.clone_from(&source.process_names);
        self.channel_names.clone_from(&source.channel_names);
    }
}

/// Node-content equality. The `*_names` indexes are derived data (a pure
/// function of the node tables), so they are deliberately excluded — two
/// graphs with equal nodes and edges are equal even if one was deserialized
/// in a process with a differently-populated interner. Tombstones are part of
/// the comparison (they determine which ids future inserts receive), matching
/// the id-counter comparison of the map-backed generation.
impl PartialEq for SpiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.processes == other.processes
            && self.channels == other.channels
            && self.writers == other.writers
            && self.readers == other.readers
    }
}

impl SpiGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        SpiGraph {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Name of the modelled system.
    pub fn name(&self) -> &str {
        &self.name
    }

    // --- node management -----------------------------------------------------------

    /// The id the next process insert will receive: its slab slot.
    fn next_process_id(&self) -> ProcessId {
        ProcessId::new(u32::try_from(self.processes.len()).expect("process slab overflow"))
    }

    /// The id the next channel insert will receive: its slab slot.
    fn next_channel_id(&self) -> ChannelId {
        ChannelId::new(u32::try_from(self.channels.len()).expect("channel slab overflow"))
    }

    /// Adds an empty process and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a process with the same name exists.
    pub fn new_process(&mut self, name: impl Into<String>) -> Result<ProcessId, ModelError> {
        let name = name.into();
        let sym = Sym::intern(&name);
        if self.process_names.contains_key(&sym) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = self.next_process_id();
        self.processes.push(Some(Process::new_interned(id, sym)));
        self.live_processes += 1;
        self.process_names.insert(sym, id);
        Ok(id)
    }

    /// Adds a channel of the given kind and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a channel with the same name exists.
    pub fn new_channel(
        &mut self,
        name: impl Into<String>,
        kind: ChannelKind,
    ) -> Result<ChannelId, ModelError> {
        let name = name.into();
        let sym = Sym::intern(&name);
        if self.channel_names.contains_key(&sym) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = self.next_channel_id();
        self.channels
            .push(Some(Channel::new_interned(id, sym, kind)));
        self.writers.push(None);
        self.readers.push(None);
        self.live_channels += 1;
        self.channel_names.insert(sym, id);
        Ok(id)
    }

    /// Inserts an already-built channel description, replacing the one created by
    /// [`new_channel`](Self::new_channel) (used to set capacities or initial tokens).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownChannel`] if the id does not exist.
    pub fn replace_channel(&mut self, channel: Channel) -> Result<(), ModelError> {
        let id = channel.id();
        let Some(previous) = self.channel(id) else {
            return Err(ModelError::UnknownChannel(id));
        };
        if previous.name_sym() != channel.name_sym() {
            // Replacement normally keeps the name (it adjusts capacities or
            // initial tokens); when it does not, move the index entry along.
            let new_sym = channel.name_sym();
            if self.channel_names.contains_key(&new_sym) {
                return Err(ModelError::DuplicateName(channel.name().to_string()));
            }
            self.channel_names.remove(&previous.name_sym());
            self.channel_names.insert(new_sym, id);
        }
        self.channels[id.index() as usize] = Some(channel);
        Ok(())
    }

    /// Looks up a process.
    pub fn process(&self, id: ProcessId) -> Option<&Process> {
        self.processes.get(id.index() as usize)?.as_ref()
    }

    /// Mutable access to a process — for editing modes, rates, activation and
    /// flags. The process's **name must not change** through this reference
    /// (e.g. by overwriting the whole struct with a differently-named
    /// `Process`): names key the graph's `Sym` lookup index, and a renamed
    /// node would keep resolving under its old name. Renames are not part of
    /// the graph API; rebuild via [`merge`](Self::merge) with a prefix
    /// instead.
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut Process> {
        self.processes.get_mut(id.index() as usize)?.as_mut()
    }

    /// Looks up a channel.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(id.index() as usize)?.as_ref()
    }

    /// Mutable access to a channel. As with [`process_mut`](Self::process_mut),
    /// the channel's **name must not change** through this reference; to
    /// replace a channel wholesale (including a rename) use
    /// [`replace_channel`](Self::replace_channel), which keeps the name index
    /// consistent.
    pub fn channel_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(id.index() as usize)?.as_mut()
    }

    /// Finds a process by name via the `Sym`-keyed index — one interner lookup
    /// plus one hash probe instead of a linear scan over the node table. A name
    /// no graph has ever interned misses in the interner itself and never grows
    /// the global table.
    pub fn process_by_name(&self, name: &str) -> Option<&Process> {
        Interner::get(name).and_then(|sym| self.process_by_sym(sym))
    }

    /// Finds a process by its interned name symbol (the zero-string-compare
    /// path for callers that already hold a [`Sym`]).
    pub fn process_by_sym(&self, name: Sym) -> Option<&Process> {
        self.process_names
            .get(&name)
            .and_then(|id| self.process(*id))
    }

    /// Finds a channel by name via the `Sym`-keyed index; see
    /// [`process_by_name`](Self::process_by_name).
    pub fn channel_by_name(&self, name: &str) -> Option<&Channel> {
        Interner::get(name).and_then(|sym| self.channel_by_sym(sym))
    }

    /// Finds a channel by its interned name symbol.
    pub fn channel_by_sym(&self, name: Sym) -> Option<&Channel> {
        self.channel_names
            .get(&name)
            .and_then(|id| self.channel(*id))
    }

    /// Iterates over all processes in id order (= insertion order).
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.iter().filter_map(Option::as_ref)
    }

    /// Iterates over all channels in id order (= insertion order).
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter_map(Option::as_ref)
    }

    /// All process ids in order.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.processes().map(Process::id).collect()
    }

    /// All channel ids in order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.channels().map(Channel::id).collect()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.live_processes as usize
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.live_channels as usize
    }

    /// Removes a process and all edges incident to it.
    ///
    /// The slab slot becomes a tombstone: the id is never reused and every
    /// other id stays stable.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProcess`] if the id does not exist.
    pub fn remove_process(&mut self, id: ProcessId) -> Result<Process, ModelError> {
        let process = self
            .processes
            .get_mut(id.index() as usize)
            .and_then(Option::take)
            .ok_or(ModelError::UnknownProcess(id))?;
        for writer in &mut self.writers {
            if *writer == Some(id) {
                *writer = None;
            }
        }
        for reader in &mut self.readers {
            if *reader == Some(id) {
                *reader = None;
            }
        }
        self.live_processes -= 1;
        self.process_names.remove(&process.name_sym());
        Ok(process)
    }

    /// Removes a channel and all edges incident to it.
    ///
    /// The slab slot becomes a tombstone; see
    /// [`remove_process`](Self::remove_process).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownChannel`] if the id does not exist.
    pub fn remove_channel(&mut self, id: ChannelId) -> Result<Channel, ModelError> {
        let channel = self
            .channels
            .get_mut(id.index() as usize)
            .and_then(Option::take)
            .ok_or(ModelError::UnknownChannel(id))?;
        self.writers[id.index() as usize] = None;
        self.readers[id.index() as usize] = None;
        self.live_channels -= 1;
        self.channel_names.remove(&channel.name_sym());
        Ok(channel)
    }

    // --- edge management -----------------------------------------------------------

    /// Attaches `process` as the writer of `channel`.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown or the channel already has a writer.
    pub fn set_writer(&mut self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        self.check_nodes(channel, process)?;
        let slot = &mut self.writers[channel.index() as usize];
        if slot.is_some() {
            return Err(ModelError::ChannelHasWriter(channel));
        }
        *slot = Some(process);
        Ok(())
    }

    /// Attaches `process` as the reader of `channel`.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown or the channel already has a reader.
    pub fn set_reader(&mut self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        self.check_nodes(channel, process)?;
        let slot = &mut self.readers[channel.index() as usize];
        if slot.is_some() {
            return Err(ModelError::ChannelHasReader(channel));
        }
        *slot = Some(process);
        Ok(())
    }

    /// Detaches the writer of a channel, if any, and returns it.
    pub fn clear_writer(&mut self, channel: ChannelId) -> Option<ProcessId> {
        self.writers
            .get_mut(channel.index() as usize)
            .and_then(Option::take)
    }

    /// Detaches the reader of a channel, if any, and returns it.
    pub fn clear_reader(&mut self, channel: ChannelId) -> Option<ProcessId> {
        self.readers
            .get_mut(channel.index() as usize)
            .and_then(Option::take)
    }

    fn check_nodes(&self, channel: ChannelId, process: ProcessId) -> Result<(), ModelError> {
        if self.channel(channel).is_none() {
            return Err(ModelError::UnknownChannel(channel));
        }
        if self.process(process).is_none() {
            return Err(ModelError::UnknownProcess(process));
        }
        Ok(())
    }

    /// Writing process of a channel, if attached.
    pub fn writer_of(&self, channel: ChannelId) -> Option<ProcessId> {
        self.writers
            .get(channel.index() as usize)
            .copied()
            .flatten()
    }

    /// Reading process of a channel, if attached.
    pub fn reader_of(&self, channel: ChannelId) -> Option<ProcessId> {
        self.readers
            .get(channel.index() as usize)
            .copied()
            .flatten()
    }

    /// Channels read by a process (its input channels by topology), in
    /// ascending channel-id order.
    pub fn inputs_of(&self, process: ProcessId) -> Vec<ChannelId> {
        Self::incident(&self.readers, process)
    }

    /// Channels written by a process (its output channels by topology), in
    /// ascending channel-id order.
    pub fn outputs_of(&self, process: ProcessId) -> Vec<ChannelId> {
        Self::incident(&self.writers, process)
    }

    /// Channel slots of `endpoints` holding `process`, as channel ids.
    fn incident(endpoints: &[Option<ProcessId>], process: ProcessId) -> Vec<ChannelId> {
        endpoints
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(process))
            .map(|(slot, _)| ChannelId::new(slot as u32))
            .collect()
    }

    /// All edges of the graph.
    pub fn edges(&self) -> Vec<Edge> {
        let attached = |endpoints: &[Option<ProcessId>], direction: EdgeDirection| {
            endpoints
                .iter()
                .enumerate()
                .filter_map(move |(slot, p)| {
                    p.map(|process| Edge {
                        process,
                        channel: ChannelId::new(slot as u32),
                        direction,
                    })
                })
                .collect::<Vec<Edge>>()
        };
        let mut edges = attached(&self.writers, EdgeDirection::ProcessToChannel);
        edges.extend(attached(&self.readers, EdgeDirection::ChannelToProcess));
        edges.sort_by_key(|e| {
            (
                e.channel,
                e.process,
                e.direction == EdgeDirection::ChannelToProcess,
            )
        });
        edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.writers.iter().flatten().count() + self.readers.iter().flatten().count()
    }

    /// Successor processes of a process (processes reading a channel this process writes).
    pub fn successors(&self, process: ProcessId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .outputs_of(process)
            .into_iter()
            .filter_map(|c| self.reader_of(c))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Predecessor processes of a process (processes writing a channel this process reads).
    pub fn predecessors(&self, process: ProcessId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .inputs_of(process)
            .into_iter()
            .filter_map(|c| self.writer_of(c))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    // --- validation ----------------------------------------------------------------

    /// Validates the whole graph.
    ///
    /// Checks performed:
    /// * every process is internally consistent ([`Process::validate`]);
    /// * every rate entry of every mode refers to a channel actually connected to the
    ///   process in the matching direction;
    /// * every activation predicate refers only to input channels of its process.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ModelError> {
        for process in self.processes() {
            process.validate()?;
            let inputs = self.inputs_of(process.id());
            let outputs = self.outputs_of(process.id());
            for mode in process.modes() {
                for (channel, _) in mode.consumptions() {
                    if !inputs.contains(&channel) {
                        return Err(ModelError::RateOnUnconnectedChannel {
                            process: process.id(),
                            channel,
                        });
                    }
                }
                for (channel, _) in mode.productions() {
                    if !outputs.contains(&channel) {
                        return Err(ModelError::RateOnUnconnectedChannel {
                            process: process.id(),
                            channel,
                        });
                    }
                }
            }
            for channel in process.activation().referenced_channels() {
                if !inputs.contains(&channel) {
                    return Err(ModelError::ActivationOnNonInput {
                        process: process.id(),
                        channel,
                    });
                }
            }
        }
        Ok(())
    }

    // --- merging -------------------------------------------------------------------

    /// Copies every node and edge of `other` into `self`, relabelling identifiers and
    /// prefixing node names with `prefix` (pass an empty string to keep names).
    ///
    /// Returns the identifier remapping so callers can rewire ports afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateName`] if a prefixed name collides with an
    /// existing node name.
    pub fn merge(&mut self, other: &SpiGraph, prefix: &str) -> Result<MergeMap, ModelError> {
        let mut map = MergeMap::default();

        // Channels first so processes can have their references rewritten in one pass.
        for channel in other.channels() {
            let new_name = format!("{prefix}{}", channel.name());
            let sym = Sym::intern(&new_name);
            if self.channel_names.contains_key(&sym) {
                return Err(ModelError::DuplicateName(new_name));
            }
            let id = self.next_channel_id();
            self.channels
                .push(Some(channel.clone().with_id(id).with_name(sym)));
            self.writers.push(None);
            self.readers.push(None);
            self.live_channels += 1;
            self.channel_names.insert(sym, id);
            map.channels.insert(channel.id(), id);
        }

        for process in other.processes() {
            let new_name = format!("{prefix}{}", process.name());
            let sym = Sym::intern(&new_name);
            if self.process_names.contains_key(&sym) {
                return Err(ModelError::DuplicateName(new_name));
            }
            let id = self.next_process_id();
            let mut copied = process.clone().with_id(id).with_name(sym);
            copied.remap_channels(&map.channels);
            self.processes.push(Some(copied));
            self.live_processes += 1;
            self.process_names.insert(sym, id);
            map.processes.insert(process.id(), id);
        }

        self.copy_edges(other, &map);
        Ok(map)
    }

    /// Rewires `other`'s writer/reader relation into `self` through `map` —
    /// the shared tail of both merge flavours. Edge slots of removed channels
    /// are already `None` in `other`, so tombstones need no special case.
    fn copy_edges(&mut self, other: &SpiGraph, map: &MergeMap) {
        for (slot, process) in other.writers.iter().enumerate() {
            if let Some(process) = process {
                let c = map.channels[&ChannelId::new(slot as u32)];
                self.writers[c.index() as usize] = Some(map.processes[process]);
            }
        }
        for (slot, process) in other.readers.iter().enumerate() {
            if let Some(process) = process {
                let c = map.channels[&ChannelId::new(slot as u32)];
                self.readers[c.index() as usize] = Some(map.processes[process]);
            }
        }
    }

    /// Copies every node and edge of `other` into `self`, relabelling identifiers but
    /// keeping node names as they are — the fast path behind
    /// `spi_variants::Flattener`.
    ///
    /// Unlike [`merge`](Self::merge) this performs **no duplicate-name detection**
    /// (which is an `O(nodes_self × nodes_other)` scan): the caller must guarantee
    /// that every node name of `other` is absent from `self`. The variants layer
    /// establishes this once per cluster when a `Flattener` is built and then splices
    /// the same pre-renamed cluster graphs into fresh skeleton clones many times.
    /// Debug builds still assert disjointness.
    pub fn merge_disjoint(&mut self, other: &SpiGraph) -> MergeMap {
        let mut map = MergeMap {
            processes: IdRemap::with_capacity(other.processes.len()),
            channels: IdRemap::with_capacity(other.channels.len()),
        };

        // O(n) slab append: every live node of `other` is pushed onto the end
        // of `self`'s slab, so when `other` is tombstone-free the new ids are
        // exactly `old + offset` (offset = `self`'s pre-merge slab length) —
        // an offset-shift rather than a per-node tree splice. Tombstoned
        // slots of `other` are skipped (not copied), so the receiving graph
        // stays as dense as it was.
        self.channels.reserve(other.channel_count());
        self.writers.reserve(other.channel_count());
        self.readers.reserve(other.channel_count());
        for channel in other.channels() {
            debug_assert!(
                self.channel_by_name(channel.name()).is_none(),
                "merge_disjoint: channel name `{}` already present",
                channel.name()
            );
            let id = self.next_channel_id();
            self.channels.push(Some(channel.clone().with_id(id)));
            self.writers.push(None);
            self.readers.push(None);
            map.channels.insert(channel.id(), id);
        }
        self.live_channels += other.live_channels;

        self.processes.reserve(other.process_count());
        for process in other.processes() {
            debug_assert!(
                self.process_by_name(process.name()).is_none(),
                "merge_disjoint: process name `{}` already present",
                process.name()
            );
            let id = self.next_process_id();
            let mut copied = process.clone().with_id(id);
            copied.remap_channels(&map.channels);
            self.processes.push(Some(copied));
            map.processes.insert(process.id(), id);
        }
        self.live_processes += other.live_processes;

        self.copy_edges(other, &map);

        // Names are kept verbatim, so `other`'s name index carries over with the
        // ids remapped — no re-interning (and no string hashing) on this path,
        // which the `Flattener` hits once per cluster per flattened variant.
        for (&sym, old_id) in &other.process_names {
            self.process_names.insert(sym, map.processes[old_id]);
        }
        for (&sym, old_id) in &other.channel_names {
            self.channel_names.insert(sym, map.channels[old_id]);
        }

        map
    }

    // --- watermark / truncate (delta flattening) -------------------------------------

    /// True when no slot of either slab is a tombstone — every id below the
    /// slab length names a live node. Dense graphs are the precondition for
    /// the offset-shift merge and for watermark truncation being an exact
    /// undo of a splice.
    pub fn is_dense(&self) -> bool {
        self.live_processes as usize == self.processes.len()
            && self.live_channels as usize == self.channels.len()
    }

    /// The current slab lengths, as a rollback point for
    /// [`truncate_to`](Self::truncate_to).
    ///
    /// On a tombstone-free graph every later [`merge_disjoint`](Self::merge_disjoint)
    /// / [`merge_disjoint_shifted`](Self::merge_disjoint_shifted) appends its
    /// nodes strictly above this mark, so truncating back to it removes
    /// exactly those splices.
    pub fn watermark(&self) -> GraphWatermark {
        GraphWatermark {
            processes: self.processes.len() as u32,
            channels: self.channels.len() as u32,
        }
    }

    /// Rolls the slabs back to a previously taken [`watermark`](Self::watermark),
    /// undoing every splice performed since — O(removed nodes), including the
    /// name-index and edge rollback.
    ///
    /// The caller must detach edges *from surviving channels to removed
    /// processes* first (the delta flattener clears the port wirings it made
    /// below the mark before truncating); a surviving wiring that still
    /// points above the mark is rejected.
    ///
    /// # Errors
    ///
    /// [`ModelError::SlabIntegrity`] if the watermark lies above the current
    /// slab lengths (it was taken from a different graph or the graph
    /// already shrank past it), or if a surviving edge slot still points at
    /// a process the truncation would remove. Both checks run **before**
    /// anything is mutated, so on `Err` the graph is untouched — release
    /// builds refuse instead of silently corrupting the slabs, and the delta
    /// flattener falls back to a full rebuild.
    pub fn truncate_to(&mut self, mark: GraphWatermark) -> Result<(), ModelError> {
        let p_mark = mark.processes as usize;
        let c_mark = mark.channels as usize;
        if p_mark > self.processes.len() || c_mark > self.channels.len() {
            return Err(ModelError::SlabIntegrity(format!(
                "truncate_to: watermark ({}, {}) above slab lengths ({}, {})",
                mark.processes,
                mark.channels,
                self.processes.len(),
                self.channels.len()
            )));
        }
        if let Some(dangling) = self
            .writers
            .iter()
            .take(c_mark)
            .chain(self.readers.iter().take(c_mark))
            .flatten()
            .find(|p| p.index() >= mark.processes)
        {
            return Err(ModelError::SlabIntegrity(format!(
                "truncate_to: surviving edge still points at process {dangling}, \
                 which the truncation would remove (detach port wirings first)"
            )));
        }
        while self.processes.len() > p_mark {
            if let Some(process) = self.processes.pop().expect("len checked") {
                self.live_processes -= 1;
                self.process_names.remove(&process.name_sym());
            }
        }
        while self.channels.len() > c_mark {
            if let Some(channel) = self.channels.pop().expect("len checked") {
                self.live_channels -= 1;
                self.channel_names.remove(&channel.name_sym());
            }
        }
        self.writers.truncate(c_mark);
        self.readers.truncate(c_mark);
        Ok(())
    }

    /// The offset-shift fast path of [`merge_disjoint`](Self::merge_disjoint)
    /// for a **tombstone-free** `other`: every new id is exactly
    /// `old + offset`, so instead of building a [`MergeMap`] the splice
    /// returns the two offsets (the receiving slab lengths before the merge)
    /// and rewrites the guest's channel references with one addition per
    /// entry. This is the per-variant splice the delta flattener pays, so it
    /// allocates nothing beyond the appended nodes.
    ///
    /// Same contract as `merge_disjoint` otherwise: no duplicate-name
    /// detection (caller guarantees disjointness), names carried over
    /// verbatim. Debug builds additionally assert name disjointness.
    ///
    /// # Errors
    ///
    /// [`ModelError::SlabIntegrity`] if `other` has tombstones — the
    /// offset-shift arithmetic is only an isomorphism over dense slabs, so a
    /// tombstoned guest would splice dangling ids. Checked (O(1)) before
    /// anything is mutated; use [`merge_disjoint`](Self::merge_disjoint) for
    /// sparse guests.
    pub fn merge_disjoint_shifted(&mut self, other: &SpiGraph) -> Result<(u32, u32), ModelError> {
        if !other.is_dense() {
            return Err(ModelError::SlabIntegrity(format!(
                "merge_disjoint_shifted: guest `{}` has tombstones; use merge_disjoint",
                other.name
            )));
        }
        let process_offset = self.processes.len() as u32;
        let channel_offset = self.channels.len() as u32;

        self.channels.reserve(other.channels.len());
        self.writers.reserve(other.channels.len());
        self.readers.reserve(other.channels.len());
        for channel in other.channels() {
            debug_assert!(
                self.channel_by_name(channel.name()).is_none(),
                "merge_disjoint_shifted: channel name `{}` already present",
                channel.name()
            );
            let id = ChannelId::new(channel_offset + channel.id().index());
            self.channels.push(Some(channel.clone().with_id(id)));
        }
        self.live_channels += other.live_channels;

        for (slot, (writer, reader)) in other.writers.iter().zip(&other.readers).enumerate() {
            debug_assert!(other.channels[slot].is_some());
            self.writers
                .push(writer.map(|p| ProcessId::new(process_offset + p.index())));
            self.readers
                .push(reader.map(|p| ProcessId::new(process_offset + p.index())));
        }

        self.processes.reserve(other.processes.len());
        for process in other.processes() {
            debug_assert!(
                self.process_by_name(process.name()).is_none(),
                "merge_disjoint_shifted: process name `{}` already present",
                process.name()
            );
            let id = ProcessId::new(process_offset + process.id().index());
            let mut copied = process.clone().with_id(id);
            copied.shift_channels(channel_offset);
            self.processes.push(Some(copied));
        }
        self.live_processes += other.live_processes;

        for (&sym, old_id) in &other.process_names {
            self.process_names
                .insert(sym, ProcessId::new(process_offset + old_id.index()));
        }
        for (&sym, old_id) in &other.channel_names {
            self.channel_names
                .insert(sym, ChannelId::new(channel_offset + old_id.index()));
        }

        Ok((process_offset, channel_offset))
    }
}

/// A rollback point of a [`SpiGraph`]'s slabs: the slab lengths at the moment
/// [`SpiGraph::watermark`] was taken. See [`SpiGraph::truncate_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphWatermark {
    /// Process-slab length at the mark.
    pub processes: u32,
    /// Channel-slab length at the mark.
    pub channels: u32,
}

impl fmt::Display for SpiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SPI graph `{}`: {} processes, {} channels, {} edges",
            self.name,
            self.process_count(),
            self.channel_count(),
            self.edge_count()
        )?;
        for p in self.processes() {
            writeln!(f, "  {p}")?;
        }
        for c in self.channels() {
            let writer = self
                .writer_of(c.id())
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            let reader = self
                .reader_of(c.id())
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            writeln!(f, "  {c}: {writer} -> {reader}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::mode::ProductionSpec;

    fn chain() -> (SpiGraph, ProcessId, ProcessId, ChannelId) {
        let mut g = SpiGraph::new("chain");
        let p1 = g.new_process("p1").unwrap();
        let p2 = g.new_process("p2").unwrap();
        let c1 = g.new_channel("c1", ChannelKind::Queue).unwrap();
        g.set_writer(c1, p1).unwrap();
        g.set_reader(c1, p2).unwrap();
        g.process_mut(p1)
            .unwrap()
            .add_mode_with("m0", Interval::point(1), |m| {
                m.set_production(c1, ProductionSpec::amount(Interval::point(1)));
            });
        g.process_mut(p2)
            .unwrap()
            .add_mode_with("m0", Interval::point(2), |m| {
                m.set_consumption(c1, Interval::point(1));
            });
        (g, p1, p2, c1)
    }

    #[test]
    fn topology_queries() {
        let (g, p1, p2, c1) = chain();
        assert_eq!(g.writer_of(c1), Some(p1));
        assert_eq!(g.reader_of(c1), Some(p2));
        assert_eq!(g.outputs_of(p1), vec![c1]);
        assert_eq!(g.inputs_of(p2), vec![c1]);
        assert_eq!(g.successors(p1), vec![p2]);
        assert_eq!(g.predecessors(p2), vec![p1]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn point_to_point_enforced() {
        let (mut g, p1, _p2, c1) = chain();
        let p3 = g.new_process("p3").unwrap();
        assert_eq!(g.set_writer(c1, p3), Err(ModelError::ChannelHasWriter(c1)));
        assert_eq!(g.set_reader(c1, p3), Err(ModelError::ChannelHasReader(c1)));
        // Unknown nodes rejected.
        assert!(matches!(
            g.set_writer(ChannelId::new(99), p1),
            Err(ModelError::UnknownChannel(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = SpiGraph::new("dup");
        g.new_process("p").unwrap();
        assert_eq!(
            g.new_process("p"),
            Err(ModelError::DuplicateName("p".into()))
        );
        g.new_channel("c", ChannelKind::Queue).unwrap();
        assert_eq!(
            g.new_channel("c", ChannelKind::Register),
            Err(ModelError::DuplicateName("c".into()))
        );
    }

    #[test]
    fn validate_accepts_consistent_chain() {
        let (g, _, _, _) = chain();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validate_rejects_rate_on_unconnected_channel() {
        let (mut g, p1, _, _) = chain();
        let orphan = g.new_channel("orphan", ChannelKind::Queue).unwrap();
        g.process_mut(p1)
            .unwrap()
            .add_mode_with("bad", Interval::point(1), |m| {
                m.set_production(orphan, ProductionSpec::amount(Interval::point(1)));
            });
        assert!(matches!(
            g.validate(),
            Err(ModelError::RateOnUnconnectedChannel { .. })
        ));
    }

    #[test]
    fn validate_rejects_activation_on_non_input() {
        let (mut g, p1, _, c1) = chain();
        use crate::activation::{ActivationFunction, ActivationRule, Predicate};
        // p1 writes c1 but does not read it; predicating on it is invalid.
        let af = ActivationFunction::new().with_rule(ActivationRule::new(
            "bad",
            Predicate::min_tokens(c1, 1),
            crate::ids::ModeId::new(0),
        ));
        g.process_mut(p1).unwrap().set_activation(af);
        assert!(matches!(
            g.validate(),
            Err(ModelError::ActivationOnNonInput { .. })
        ));
    }

    #[test]
    fn remove_process_clears_edges() {
        let (mut g, p1, _, c1) = chain();
        g.remove_process(p1).unwrap();
        assert_eq!(g.writer_of(c1), None);
        assert!(g.process(p1).is_none());
        assert!(matches!(
            g.remove_process(p1),
            Err(ModelError::UnknownProcess(_))
        ));
    }

    #[test]
    fn remove_channel_clears_edges() {
        let (mut g, _, p2, c1) = chain();
        g.remove_channel(c1).unwrap();
        assert!(g.inputs_of(p2).is_empty());
        assert!(matches!(
            g.remove_channel(c1),
            Err(ModelError::UnknownChannel(_))
        ));
    }

    #[test]
    fn merge_relabels_and_rewires() {
        let (mut host, _, _, _) = chain();
        let (guest, gp1, gp2, gc1) = chain();
        let map = host.merge(&guest, "v1_").unwrap();
        assert_eq!(host.process_count(), 4);
        assert_eq!(host.channel_count(), 2);
        let new_c = map.channels[&gc1];
        assert_eq!(host.writer_of(new_c), Some(map.processes[&gp1]));
        assert_eq!(host.reader_of(new_c), Some(map.processes[&gp2]));
        // Rates were remapped to the new channel ids, so validation still holds.
        assert!(host.validate().is_ok());
        assert!(host.process_by_name("v1_p1").is_some());
    }

    #[test]
    fn merge_disjoint_matches_checked_merge() {
        let (mut checked_host, _, _, _) = chain();
        let mut fast_host = checked_host.clone();
        // Pre-rename the guest the way the variants layer does, then merge both ways.
        let (guest, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        renamed.merge(&guest, "v1_").unwrap();
        let checked_map = checked_host.merge(&renamed, "").unwrap();
        let fast_map = fast_host.merge_disjoint(&renamed);
        assert_eq!(checked_map, fast_map);
        assert_eq!(checked_host, fast_host);
        assert!(fast_host.validate().is_ok());
        assert!(fast_host.process_by_name("v1_p1").is_some());
    }

    #[test]
    fn merge_disjoint_shifted_matches_merge_disjoint() {
        let (mut slow_host, _, _, _) = chain();
        let mut fast_host = slow_host.clone();
        let (guest, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        renamed.merge(&guest, "v1_").unwrap();
        let before = fast_host.watermark();
        let map = slow_host.merge_disjoint(&renamed);
        let (p_off, c_off) = fast_host.merge_disjoint_shifted(&renamed).unwrap();
        assert_eq!((p_off, c_off), (before.processes, before.channels));
        assert_eq!(slow_host, fast_host);
        // The offset-shift is exactly the map merge_disjoint built.
        for old in renamed.process_ids() {
            assert_eq!(map.processes[&old], ProcessId::new(p_off + old.index()));
        }
        for old in renamed.channel_ids() {
            assert_eq!(map.channels[&old], ChannelId::new(c_off + old.index()));
        }
        assert!(fast_host.validate().is_ok());
        assert_eq!(
            fast_host.process_by_name("v1_p1").unwrap().id(),
            ProcessId::new(p_off + renamed.process_by_name("v1_p1").unwrap().id().index())
        );
    }

    #[test]
    fn truncate_to_undoes_a_splice() {
        let (mut host, _, _, c1) = chain();
        let pristine = host.clone();
        let (guest, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        renamed.merge(&guest, "v1_").unwrap();

        let mark = host.watermark();
        let (p_off, _) = host.merge_disjoint_shifted(&renamed).unwrap();
        // Wire a spliced process onto a skeleton channel the way the
        // flattener does, then detach it again before rolling back.
        host.clear_writer(c1);
        host.set_writer(c1, ProcessId::new(p_off)).unwrap();
        assert_ne!(host, pristine);

        host.clear_writer(c1);
        host.set_writer(c1, pristine.writer_of(c1).unwrap())
            .unwrap();
        host.truncate_to(mark).unwrap();
        assert_eq!(host, pristine);
        assert!(host.is_dense());
        // Name index rolled back too: the spliced names resolve to nothing...
        assert!(host.process_by_name("v1_p1").is_none());
        assert!(host.channel_by_name("v1_c1").is_none());
        // ...and a re-splice lands on the same ids.
        let offsets = host.merge_disjoint_shifted(&renamed).unwrap();
        assert_eq!(offsets, (mark.processes, mark.channels));
    }

    #[test]
    fn truncate_to_rejects_foreign_watermark() {
        let (big, _, _, _) = chain();
        let mark = big.watermark();
        let mut small = SpiGraph::new("empty");
        let err = small.truncate_to(mark).unwrap_err();
        assert!(matches!(err, ModelError::SlabIntegrity(_)), "{err}");
        assert_eq!(small, SpiGraph::new("empty"), "graph untouched on error");
    }

    #[test]
    fn truncate_to_rejects_a_dangling_wiring_without_mutating() {
        let (mut host, _, _, c1) = chain();
        let (guest, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        renamed.merge(&guest, "v1_").unwrap();

        let mark = host.watermark();
        let (p_off, _) = host.merge_disjoint_shifted(&renamed).unwrap();
        // Wire a spliced process onto a skeleton channel and "forget" to
        // detach it: rolling back now would leave c1's writer dangling.
        host.clear_writer(c1);
        host.set_writer(c1, ProcessId::new(p_off)).unwrap();
        let spliced = host.clone();

        let err = host.truncate_to(mark).unwrap_err();
        assert!(matches!(err, ModelError::SlabIntegrity(_)), "{err}");
        assert_eq!(host, spliced, "failed truncation must not mutate");
    }

    #[test]
    fn shifted_merge_rejects_a_tombstoned_guest_without_mutating() {
        let (mut host, _, _, _) = chain();
        let mut renamed = SpiGraph::new("renamed");
        let (guest, _, _, _) = chain();
        renamed.merge(&guest, "v1_").unwrap();
        let sparse_p = renamed.process_by_name("v1_p1").unwrap().id();
        renamed.remove_process(sparse_p).unwrap();
        assert!(!renamed.is_dense());

        let pristine = host.clone();
        let err = host.merge_disjoint_shifted(&renamed).unwrap_err();
        assert!(matches!(err, ModelError::SlabIntegrity(_)), "{err}");
        assert_eq!(host, pristine, "failed splice must not mutate");
    }

    #[test]
    fn density_tracks_tombstones() {
        let (mut g, p1, _, _) = chain();
        assert!(g.is_dense());
        g.remove_process(p1).unwrap();
        assert!(!g.is_dense());
    }

    #[test]
    fn merge_rejects_name_collision() {
        let (mut host, _, _, _) = chain();
        let (guest, _, _, _) = chain();
        assert!(matches!(
            host.merge(&guest, ""),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn name_index_answers_by_name_and_by_sym() {
        let (g, p1, _, c1) = chain();
        assert_eq!(g.process_by_name("p1").unwrap().id(), p1);
        assert_eq!(g.process_by_sym(Sym::intern("p1")).unwrap().id(), p1);
        assert_eq!(g.channel_by_name("c1").unwrap().id(), c1);
        assert_eq!(g.channel_by_sym(Sym::intern("c1")).unwrap().id(), c1);
        // A never-interned name misses without growing the global table.
        let before = Interner::len();
        assert!(g
            .process_by_name("spi_model::graph::tests::never_interned")
            .is_none());
        assert_eq!(Interner::len(), before);
        // An interned name that names no node of *this* graph also misses.
        let foreign = Sym::intern("spi_model::graph::tests::foreign");
        assert!(g.process_by_sym(foreign).is_none());
        assert!(g.channel_by_sym(foreign).is_none());
    }

    #[test]
    fn name_index_tracks_removal_and_reinsertion() {
        let (mut g, p1, _, c1) = chain();
        g.remove_process(p1).unwrap();
        assert!(g.process_by_name("p1").is_none());
        let p1_again = g.new_process("p1").unwrap();
        assert_eq!(g.process_by_name("p1").unwrap().id(), p1_again);
        g.remove_channel(c1).unwrap();
        assert!(g.channel_by_name("c1").is_none());
        let c1_again = g.new_channel("c1", ChannelKind::Queue).unwrap();
        assert_eq!(g.channel_by_name("c1").unwrap().id(), c1_again);
    }

    #[test]
    fn name_index_survives_both_merge_paths() {
        let (mut host, _, _, _) = chain();
        let (guest, gp1, _, gc1) = chain();
        let mut renamed = SpiGraph::new("renamed");
        let rename_map = renamed.merge(&guest, "v1_").unwrap();
        assert_eq!(
            renamed.process_by_name("v1_p1").unwrap().id(),
            rename_map.processes[&gp1]
        );
        let fast_map = host.merge_disjoint(&renamed);
        assert_eq!(
            host.process_by_name("v1_p1").unwrap().id(),
            fast_map.processes[&rename_map.processes[&gp1]]
        );
        assert_eq!(
            host.channel_by_name("v1_c1").unwrap().id(),
            fast_map.channels[&rename_map.channels[&gc1]]
        );
        // The host's own nodes are still resolvable.
        assert!(host.process_by_name("p1").is_some());
    }

    #[test]
    fn replace_channel_moves_the_index_on_rename() {
        let (mut g, _, _, c1) = chain();
        let renamed = g
            .channel(c1)
            .unwrap()
            .clone()
            .with_name("c1_renamed".into());
        g.replace_channel(renamed).unwrap();
        assert!(g.channel_by_name("c1").is_none());
        assert_eq!(g.channel_by_name("c1_renamed").unwrap().id(), c1);
        // Renaming onto an existing name is rejected and leaves the index intact.
        let orphan = g.new_channel("orphan", ChannelKind::Queue).unwrap();
        let clash = g
            .channel(orphan)
            .unwrap()
            .clone()
            .with_name("c1_renamed".into());
        assert_eq!(
            g.replace_channel(clash),
            Err(ModelError::DuplicateName("c1_renamed".into()))
        );
        assert_eq!(g.channel_by_name("orphan").unwrap().id(), orphan);
    }

    #[test]
    fn display_lists_nodes() {
        let (g, _, _, _) = chain();
        let text = g.to_string();
        assert!(text.contains("`chain`"));
        assert!(text.contains("p1"));
        assert!(text.contains("c1"));
    }
}
