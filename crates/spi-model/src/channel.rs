//! Channel nodes.
//!
//! Channels transfer data from exactly one sending process to exactly one receiving
//! process without transformation. SPI distinguishes two kinds:
//!
//! * **queues** — FIFO ordered, destructive read, unbounded unless a capacity is given;
//! * **registers** — destructive write, always hold at most the latest value.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ModelError;
use crate::ids::{ChannelId, Sym};
use crate::token::Token;

/// The two channel disciplines of the SPI model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// FIFO-ordered queue with destructive read.
    Queue,
    /// Register with destructive write; reads are non-destructive and always see the
    /// most recently written value.
    Register,
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Queue => write!(f, "queue"),
            ChannelKind::Register => write!(f, "register"),
        }
    }
}

/// A channel node of an SPI graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    id: ChannelId,
    /// Interned — see [`crate::Process`]: the Flattener clones every channel
    /// of the skeleton per enumerated variant, so the name is a `Copy` handle.
    name: Sym,
    kind: ChannelKind,
    capacity: Option<usize>,
    initial_tokens: Vec<Token>,
    is_virtual: bool,
}

impl Channel {
    /// Creates a new channel description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RegisterCapacity`] if a register is given a capacity other
    /// than one, and [`ModelError::Validation`] if the initial tokens exceed the capacity.
    pub fn new(
        id: ChannelId,
        name: impl AsRef<str>,
        kind: ChannelKind,
    ) -> Result<Self, ModelError> {
        Ok(Self::new_interned(id, Sym::intern(name.as_ref()), kind))
    }

    /// Internal: [`new`](Self::new) with a pre-interned name — the graph
    /// interns once for its duplicate-name check and passes the symbol along
    /// instead of paying a second interner probe.
    pub(crate) fn new_interned(id: ChannelId, name: Sym, kind: ChannelKind) -> Self {
        Channel {
            id,
            name,
            kind,
            capacity: match kind {
                ChannelKind::Queue => None,
                ChannelKind::Register => Some(1),
            },
            initial_tokens: Vec::new(),
            is_virtual: false,
        }
    }

    /// Sets a finite capacity (queues only; registers always have capacity one).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RegisterCapacity`] when called on a register with a
    /// capacity other than one, or [`ModelError::Validation`] for a zero capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Result<Self, ModelError> {
        if capacity == 0 {
            return Err(ModelError::Validation(format!(
                "channel {} capacity must be at least one",
                self.id
            )));
        }
        if self.kind == ChannelKind::Register && capacity != 1 {
            return Err(ModelError::RegisterCapacity(self.id));
        }
        self.capacity = Some(capacity);
        Ok(self)
    }

    /// Sets initial tokens present on the channel before the first execution.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Validation`] if the tokens exceed the channel capacity.
    pub fn with_initial_tokens(mut self, tokens: Vec<Token>) -> Result<Self, ModelError> {
        if let Some(cap) = self.capacity {
            if tokens.len() > cap {
                return Err(ModelError::Validation(format!(
                    "channel {} initial tokens ({}) exceed capacity ({cap})",
                    self.id,
                    tokens.len()
                )));
            }
        }
        self.initial_tokens = tokens;
        Ok(self)
    }

    /// Marks the channel as virtual (part of the environment model, not the implementation).
    pub fn into_virtual(mut self) -> Self {
        self.is_virtual = true;
        self
    }

    /// Channel identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// Human-readable channel name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The interned name symbol (what the graph's name indexes key on).
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// Channel discipline.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// Capacity bound, `None` meaning unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Tokens present before the first execution.
    pub fn initial_tokens(&self) -> &[Token] {
        &self.initial_tokens
    }

    /// Whether the channel belongs to the environment model.
    pub fn is_virtual(&self) -> bool {
        self.is_virtual
    }

    /// Internal: used by graph merging to relabel the channel.
    pub(crate) fn with_id(mut self, id: ChannelId) -> Self {
        self.id = id;
        self
    }

    /// Internal: used by graph merging to rename the channel.
    pub(crate) fn with_name(mut self, name: Sym) -> Self {
        self.name = name;
        self
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}` ({})", self.id, self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_defaults_to_unbounded() {
        let c = Channel::new(ChannelId::new(0), "c0", ChannelKind::Queue).unwrap();
        assert_eq!(c.capacity(), None);
        assert_eq!(c.kind(), ChannelKind::Queue);
    }

    #[test]
    fn register_defaults_to_capacity_one() {
        let c = Channel::new(ChannelId::new(1), "r", ChannelKind::Register).unwrap();
        assert_eq!(c.capacity(), Some(1));
    }

    #[test]
    fn register_rejects_other_capacities() {
        let c = Channel::new(ChannelId::new(1), "r", ChannelKind::Register).unwrap();
        assert!(matches!(
            c.clone().with_capacity(4),
            Err(ModelError::RegisterCapacity(_))
        ));
        assert!(c.with_capacity(1).is_ok());
    }

    #[test]
    fn zero_capacity_rejected() {
        let c = Channel::new(ChannelId::new(2), "q", ChannelKind::Queue).unwrap();
        assert!(matches!(c.with_capacity(0), Err(ModelError::Validation(_))));
    }

    #[test]
    fn initial_tokens_respect_capacity() {
        let c = Channel::new(ChannelId::new(3), "q", ChannelKind::Queue)
            .unwrap()
            .with_capacity(2)
            .unwrap();
        let too_many = vec![Token::new(), Token::new(), Token::new()];
        assert!(c.clone().with_initial_tokens(too_many).is_err());
        assert!(c.with_initial_tokens(vec![Token::new()]).is_ok());
    }

    #[test]
    fn virtual_flag_round_trips() {
        let c = Channel::new(ChannelId::new(4), "env", ChannelKind::Queue)
            .unwrap()
            .into_virtual();
        assert!(c.is_virtual());
    }
}
