//! Canonical introspection-graph model: the service's **waitgraph**.
//!
//! One node model, one edge kind. Nodes are the six entities the exploration
//! service schedules around — `job`, `shard`, `lease`, `worker`, `tenant`,
//! `store` — and the only edge is `needs`: *source cannot progress until
//! target does*. Nothing is inferred; the snapshot assembler states exactly
//! the dependencies the registry knows, and a cycle in `needs` would be a
//! deadlock by construction. Keeping the model this small is what makes
//! "why is tenant B starved" one query instead of a log-diving session, and
//! it is the shape every later fleet surface (multi-node fabric, dashboards)
//! consumes.
//!
//! The model lives in `spi-model` because it is wire vocabulary, not service
//! state: both ends of the `graph` op — and offline tools — share the JSON
//! encoding defined here via [`ToJson`]/[`FromJson`].

use crate::json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};

/// The closed set of node kinds a waitgraph may contain.
pub const NODE_KINDS: [&str; 6] = ["job", "shard", "lease", "worker", "tenant", "store"];

/// One entity in the waitgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// Stable node id, conventionally `kind:discriminator` (`"job:3"`,
    /// `"shard:3/7"`, `"worker:spi-explore-worker-0"`). Unique per snapshot.
    pub id: String,
    /// One of [`NODE_KINDS`].
    pub kind: String,
    /// Human-readable label (job name, tenant name, …).
    pub label: String,
    /// Ordered key→value details (state, counters); insertion order is kept
    /// so snapshots serialize deterministically.
    pub attrs: Vec<(String, String)>,
}

impl GraphNode {
    /// A node with no attributes.
    pub fn new(
        id: impl Into<String>,
        kind: impl Into<String>,
        label: impl Into<String>,
    ) -> GraphNode {
        GraphNode {
            id: id.into(),
            kind: kind.into(),
            label: label.into(),
            attrs: Vec::new(),
        }
    }

    /// Appends one attribute, returning `self` for chaining.
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> GraphNode {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

/// The single edge kind: `source` **needs** `target` to progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// The blocked node.
    pub source: String,
    /// The node it waits on.
    pub needs: String,
}

impl GraphEdge {
    /// An edge stating that `source` needs `needs`.
    pub fn new(source: impl Into<String>, needs: impl Into<String>) -> GraphEdge {
        GraphEdge {
            source: source.into(),
            needs: needs.into(),
        }
    }
}

/// A point-in-time waitgraph: every node and `needs` edge the assembler saw
/// under one registry lock acquisition (snapshots are internally consistent,
/// never torn).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphSnapshot {
    /// All nodes, in assembly order (deterministic for a given state).
    pub nodes: Vec<GraphNode>,
    /// All `needs` edges.
    pub edges: Vec<GraphEdge>,
}

impl GraphSnapshot {
    /// An empty snapshot.
    pub fn new() -> GraphSnapshot {
        GraphSnapshot::default()
    }

    /// The nodes of one kind, in snapshot order.
    pub fn nodes_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a GraphNode> {
        self.nodes.iter().filter(move |node| node.kind == kind)
    }

    /// Looks a node up by id.
    pub fn node(&self, id: &str) -> Option<&GraphNode> {
        self.nodes.iter().find(|node| node.id == id)
    }

    /// Everything `id` directly needs (its outgoing edges).
    pub fn needs_of<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a str> {
        self.edges
            .iter()
            .filter(move |edge| edge.source == id)
            .map(|edge| edge.needs.as_str())
    }

    /// Structural validity: node ids unique, kinds drawn from [`NODE_KINDS`],
    /// every edge endpoint present. Assemblers must produce snapshots that
    /// pass; consumers may assume it after checking once.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for node in &self.nodes {
            if !NODE_KINDS.contains(&node.kind.as_str()) {
                return Err(format!(
                    "node `{}` has unknown kind `{}`",
                    node.id, node.kind
                ));
            }
            if !seen.insert(node.id.as_str()) {
                return Err(format!("duplicate node id `{}`", node.id));
            }
        }
        for edge in &self.edges {
            if !seen.contains(edge.source.as_str()) {
                return Err(format!("edge source `{}` is not a node", edge.source));
            }
            if !seen.contains(edge.needs.as_str()) {
                return Err(format!("edge target `{}` is not a node", edge.needs));
            }
        }
        Ok(())
    }
}

impl ToJson for GraphNode {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", JsonValue::string(self.id.clone())),
            ("kind", JsonValue::string(self.kind.clone())),
            ("label", JsonValue::string(self.label.clone())),
            (
                "attrs",
                JsonValue::Object(
                    self.attrs
                        .iter()
                        .map(|(key, value)| (key.clone(), JsonValue::string(value.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for GraphNode {
    fn from_json(value: &JsonValue) -> JsonResult<GraphNode> {
        let field = |key: &str| -> JsonResult<String> {
            Ok(value
                .require(key)?
                .as_str()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a string")))?
                .to_string())
        };
        let attrs = match value.get("attrs") {
            None => Vec::new(),
            Some(JsonValue::Object(members)) => members
                .iter()
                .map(|(key, attr)| {
                    attr.as_str()
                        .map(|text| (key.clone(), text.to_string()))
                        .ok_or_else(|| JsonError::new(format!("attr `{key}` must be a string")))
                })
                .collect::<JsonResult<Vec<_>>>()?,
            Some(_) => return Err(JsonError::new("`attrs` must be an object")),
        };
        Ok(GraphNode {
            id: field("id")?,
            kind: field("kind")?,
            label: field("label")?,
            attrs,
        })
    }
}

impl ToJson for GraphEdge {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("source", JsonValue::string(self.source.clone())),
            ("needs", JsonValue::string(self.needs.clone())),
        ])
    }
}

impl FromJson for GraphEdge {
    fn from_json(value: &JsonValue) -> JsonResult<GraphEdge> {
        let field = |key: &str| -> JsonResult<String> {
            Ok(value
                .require(key)?
                .as_str()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a string")))?
                .to_string())
        };
        Ok(GraphEdge {
            source: field("source")?,
            needs: field("needs")?,
        })
    }
}

impl ToJson for GraphSnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "nodes",
                JsonValue::Array(self.nodes.iter().map(ToJson::to_json).collect()),
            ),
            (
                "edges",
                JsonValue::Array(self.edges.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for GraphSnapshot {
    fn from_json(value: &JsonValue) -> JsonResult<GraphSnapshot> {
        let list = |key: &str| -> JsonResult<&[JsonValue]> {
            value
                .require(key)?
                .as_array()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an array")))
        };
        Ok(GraphSnapshot {
            nodes: list("nodes")?
                .iter()
                .map(GraphNode::from_json)
                .collect::<JsonResult<Vec<_>>>()?,
            edges: list("edges")?
                .iter()
                .map(GraphEdge::from_json)
                .collect::<JsonResult<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphSnapshot {
        let mut snapshot = GraphSnapshot::new();
        snapshot
            .nodes
            .push(GraphNode::new("tenant:team-a", "tenant", "team-a").attr("weight", "2"));
        snapshot.nodes.push(
            GraphNode::new("job:0", "job", "sweep")
                .attr("state", "running")
                .attr("shards_done", "3"),
        );
        snapshot
            .nodes
            .push(GraphNode::new("shard:0/4", "shard", "sweep[4]").attr("state", "leased"));
        snapshot.nodes.push(GraphNode::new("lease:9", "lease", "9"));
        snapshot.nodes.push(GraphNode::new(
            "worker:spi-explore-worker-1",
            "worker",
            "spi-explore-worker-1",
        ));
        snapshot
            .edges
            .push(GraphEdge::new("job:0", "tenant:team-a"));
        snapshot.edges.push(GraphEdge::new("job:0", "shard:0/4"));
        snapshot.edges.push(GraphEdge::new("shard:0/4", "lease:9"));
        snapshot
            .edges
            .push(GraphEdge::new("lease:9", "worker:spi-explore-worker-1"));
        snapshot
    }

    #[test]
    fn sample_snapshot_validates_and_queries() {
        let snapshot = sample();
        snapshot.validate().unwrap();
        assert_eq!(snapshot.nodes_of_kind("job").count(), 1);
        assert_eq!(
            snapshot.needs_of("job:0").collect::<Vec<_>>(),
            vec!["tenant:team-a", "shard:0/4"]
        );
        assert_eq!(snapshot.node("lease:9").unwrap().kind, "lease");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snapshot = sample();
        let line = snapshot.to_json().to_line();
        let parsed = GraphSnapshot::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn validate_rejects_unknown_kind_duplicate_id_and_dangling_edge() {
        let mut bad_kind = sample();
        bad_kind.nodes[0].kind = "mystery".to_string();
        assert!(bad_kind.validate().unwrap_err().contains("unknown kind"));

        let mut duplicate = sample();
        let clone = duplicate.nodes[0].clone();
        duplicate.nodes.push(clone);
        assert!(duplicate.validate().unwrap_err().contains("duplicate"));

        let mut dangling = sample();
        dangling.edges.push(GraphEdge::new("job:0", "shard:9/9"));
        assert!(dangling.validate().unwrap_err().contains("not a node"));
    }
}
