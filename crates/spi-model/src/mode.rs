//! Process modes.
//!
//! A process may expose a set of **modes**, each representing a subset of its possible
//! behaviours with strongly correlated parameters: latency, per-input consumption and
//! per-output production (with the tags added to produced tokens). Without modes, a
//! process is described only by its parameter hulls and its behaviour stays uncertain.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ids::{ChannelId, IdRemap, ModeId, Sym};
use crate::interval::Interval;
use crate::tag::TagSet;

/// Production behaviour of a mode on one output channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductionSpec {
    /// Number of tokens produced per execution.
    pub amount: Interval,
    /// Tags added to every produced token (virtual mode tags).
    pub tags: TagSet,
}

impl ProductionSpec {
    /// Production of a fixed number of untagged tokens.
    pub fn amount(amount: impl Into<Interval>) -> Self {
        ProductionSpec {
            amount: amount.into(),
            tags: TagSet::new(),
        }
    }

    /// Production of a fixed number of tokens, each carrying the given tags.
    pub fn tagged(amount: impl Into<Interval>, tags: TagSet) -> Self {
        ProductionSpec {
            amount: amount.into(),
            tags,
        }
    }
}

/// One mode of a process (Section 2 of the paper).
///
/// The Figure 1 example describes process `p2` with two modes:
///
/// | mode | latency | consumes on `c1` | produces on `c2` |
/// |------|---------|------------------|------------------|
/// | `m1` | 3 ms    | 1                | 2                |
/// | `m2` | 5 ms    | 3                | 5                |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessMode {
    id: ModeId,
    /// Interned — see [`crate::Process`]: mode names are cloned once per node
    /// per enumerated variant, so they carry a `Copy` handle, not a `String`.
    name: Sym,
    latency: Interval,
    /// Rate entries as one flat `Vec` sorted by channel id rather than the
    /// two `BTreeMap`s of earlier generations: a mode has a handful of
    /// entries, the graph clones every mode once per enumerated variant (the
    /// Flattener's skeleton clone), and a single small `Vec` clones in one
    /// allocation where two B-trees pay per-node boxes. Iteration order
    /// (ascending channel id) is identical to the maps it replaced.
    rates: Vec<RateEntry>,
}

/// Consumption and/or production of one mode on one channel; one slot of the
/// mode's sorted rate table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RateEntry {
    channel: ChannelId,
    /// `Some` once consumption was declared (zero is a declarable rate).
    consumption: Option<Interval>,
    /// `Some` once production was declared.
    production: Option<ProductionSpec>,
}

impl ProcessMode {
    /// Creates a mode with the given latency and no communication.
    pub fn new(id: ModeId, name: impl AsRef<str>, latency: Interval) -> Self {
        ProcessMode {
            id,
            name: Sym::intern(name.as_ref()),
            latency,
            rates: Vec::new(),
        }
    }

    /// The rate slot for `channel`, created (in sorted position) on demand.
    fn entry_mut(&mut self, channel: ChannelId) -> &mut RateEntry {
        let at = match self.rates.binary_search_by_key(&channel, |e| e.channel) {
            Ok(at) => at,
            Err(at) => {
                self.rates.insert(
                    at,
                    RateEntry {
                        channel,
                        consumption: None,
                        production: None,
                    },
                );
                at
            }
        };
        &mut self.rates[at]
    }

    /// The rate slot for `channel`, if any rate was declared on it.
    fn entry(&self, channel: ChannelId) -> Option<&RateEntry> {
        self.rates
            .binary_search_by_key(&channel, |e| e.channel)
            .ok()
            .map(|at| &self.rates[at])
    }

    /// Mode identifier (unique within the owning process).
    pub fn id(&self) -> ModeId {
        self.id
    }

    /// Mode name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// Execution latency of the mode.
    pub fn latency(&self) -> Interval {
        self.latency
    }

    /// Sets the number of tokens consumed from `channel` per execution.
    pub fn set_consumption(&mut self, channel: ChannelId, amount: impl Into<Interval>) {
        self.entry_mut(channel).consumption = Some(amount.into());
    }

    /// Sets the production behaviour on `channel` per execution.
    pub fn set_production(&mut self, channel: ChannelId, spec: ProductionSpec) {
        self.entry_mut(channel).production = Some(spec);
    }

    /// Tokens consumed from `channel` per execution (zero if the channel is not read).
    pub fn consumption(&self, channel: ChannelId) -> Interval {
        self.entry(channel)
            .and_then(|e| e.consumption)
            .unwrap_or_else(Interval::zero)
    }

    /// Production behaviour on `channel`, if any.
    pub fn production(&self, channel: ChannelId) -> Option<&ProductionSpec> {
        self.entry(channel).and_then(|e| e.production.as_ref())
    }

    /// All consumption entries, in ascending channel-id order.
    pub fn consumptions(&self) -> impl Iterator<Item = (ChannelId, Interval)> + '_ {
        self.rates
            .iter()
            .filter_map(|e| e.consumption.map(|i| (e.channel, i)))
    }

    /// All production entries, in ascending channel-id order.
    pub fn productions(&self) -> impl Iterator<Item = (ChannelId, &ProductionSpec)> {
        self.rates
            .iter()
            .filter_map(|e| e.production.as_ref().map(|s| (e.channel, s)))
    }

    /// Channels read by this mode, in ascending id order.
    pub fn input_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.rates
            .iter()
            .filter(|e| e.consumption.is_some())
            .map(|e| e.channel)
    }

    /// Channels written by this mode, in ascending id order.
    pub fn output_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.rates
            .iter()
            .filter(|e| e.production.is_some())
            .map(|e| e.channel)
    }

    /// Internal: relabel channel references after a graph merge. Remapping is
    /// injective (distinct channels stay distinct), so re-sorting restores the
    /// ascending-id invariant; under the merge offset-shift the order is
    /// already preserved and the sort is a linear no-op.
    pub(crate) fn remap_channels(&mut self, map: &IdRemap<ChannelId>) {
        for entry in &mut self.rates {
            if let Some(new) = map.get(&entry.channel) {
                entry.channel = *new;
            }
        }
        self.rates.sort_by_key(|e| e.channel);
    }

    /// Internal: the offset-shift special case of
    /// [`remap_channels`](Self::remap_channels). Adding a uniform offset
    /// preserves the ascending-id order of the rate table, so no re-sort is
    /// needed — this is the whole-table rewrite the delta-flattening splice
    /// pays per mode, with no remap-table probe per entry.
    pub(crate) fn shift_channels(&mut self, offset: u32) {
        for entry in &mut self.rates {
            entry.channel = ChannelId::new(entry.channel.index() + offset);
        }
    }

    /// Internal: relabel the mode id (used when merging mode sets into configurations).
    pub(crate) fn with_id(mut self, id: ModeId) -> Self {
        self.id = id;
        self
    }
}

impl fmt::Display for ProcessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}` latency={}", self.id, self.name, self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode() -> ProcessMode {
        let mut m = ProcessMode::new(ModeId::new(0), "m1", Interval::point(3));
        m.set_consumption(ChannelId::new(0), Interval::point(1));
        m.set_production(
            ChannelId::new(1),
            ProductionSpec::amount(Interval::point(2)),
        );
        m
    }

    #[test]
    fn consumption_defaults_to_zero() {
        let m = mode();
        assert_eq!(m.consumption(ChannelId::new(0)), Interval::point(1));
        assert_eq!(m.consumption(ChannelId::new(9)), Interval::zero());
    }

    #[test]
    fn production_lookup() {
        let m = mode();
        assert!(m.production(ChannelId::new(1)).is_some());
        assert!(m.production(ChannelId::new(0)).is_none());
    }

    #[test]
    fn channel_iterators_report_io() {
        let m = mode();
        assert_eq!(
            m.input_channels().collect::<Vec<_>>(),
            vec![ChannelId::new(0)]
        );
        assert_eq!(
            m.output_channels().collect::<Vec<_>>(),
            vec![ChannelId::new(1)]
        );
    }

    #[test]
    fn remap_channels_rewrites_references() {
        let mut m = mode();
        let mut map = IdRemap::new();
        map.insert(ChannelId::new(0), ChannelId::new(10));
        map.insert(ChannelId::new(1), ChannelId::new(11));
        m.remap_channels(&map);
        assert_eq!(m.consumption(ChannelId::new(10)), Interval::point(1));
        assert!(m.production(ChannelId::new(11)).is_some());
        assert!(m.production(ChannelId::new(1)).is_none());
    }

    #[test]
    fn tagged_production_carries_tags() {
        let spec = ProductionSpec::tagged(Interval::point(1), TagSet::singleton("V1"));
        assert_eq!(spec.tags.len(), 1);
        assert_eq!(spec.amount, Interval::point(1));
    }
}
