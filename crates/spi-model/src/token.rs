//! Tokens — the abstract unit of communicated data.
//!
//! SPI abstracts data content away; a token only carries a [`TagSet`] of virtual mode
//! tags (and an optional sequence number that the simulator uses for tracing, e.g. to
//! identify which video frame a token belongs to in the Figure 4 example).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::tag::{Tag, TagSet};

/// A single data token flowing through a channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    tags: TagSet,
    sequence: Option<u64>,
}

impl Token {
    /// Creates a token with no tags.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a token carrying the given tag set.
    pub fn with_tags(tags: TagSet) -> Self {
        Token {
            tags,
            sequence: None,
        }
    }

    /// Creates a token carrying a single tag.
    pub fn tagged(tag: impl Into<Tag>) -> Self {
        Token {
            tags: TagSet::singleton(tag),
            sequence: None,
        }
    }

    /// Returns a copy of this token with the given trace sequence number.
    pub fn with_sequence(mut self, seq: u64) -> Self {
        self.sequence = Some(seq);
        self
    }

    /// The tag set of the token.
    pub fn tags(&self) -> &TagSet {
        &self.tags
    }

    /// Mutable access to the tag set (used by producing processes to add tags).
    pub fn tags_mut(&mut self) -> &mut TagSet {
        &mut self.tags
    }

    /// Returns `true` if the token carries the given tag.
    pub fn has_tag(&self, tag: &Tag) -> bool {
        self.tags.contains(tag)
    }

    /// Adds a tag to the token.
    pub fn add_tag(&mut self, tag: impl Into<Tag>) {
        self.tags.insert(tag);
    }

    /// Optional trace sequence number (e.g. frame index), if assigned.
    pub fn sequence(&self) -> Option<u64> {
        self.sequence
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sequence {
            Some(seq) => write!(f, "token#{seq}{}", self.tags),
            None => write!(f, "token{}", self.tags),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_token_has_empty_tagset() {
        let t = Token::new();
        assert!(t.tags().is_empty());
        assert!(!t.has_tag(&Tag::new("a")));
    }

    #[test]
    fn tagged_constructor_sets_tag() {
        let t = Token::tagged("V2");
        assert!(t.has_tag(&Tag::new("V2")));
        assert_eq!(t.tags().len(), 1);
    }

    #[test]
    fn add_tag_accumulates() {
        let mut t = Token::tagged("a");
        t.add_tag("b");
        assert!(t.has_tag(&Tag::new("a")) && t.has_tag(&Tag::new("b")));
    }

    #[test]
    fn sequence_number_is_preserved() {
        let t = Token::new().with_sequence(42);
        assert_eq!(t.sequence(), Some(42));
        assert_eq!(t.to_string(), "token#42{}");
    }
}
