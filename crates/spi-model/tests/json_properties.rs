//! Property tests for `spi_model::json`: random [`JsonValue`] trees must
//! round-trip `write → parse` **bit-identically** (the reparsed tree equals
//! the original and re-serializes to the same byte string), and malformed
//! input — truncations, duplicate keys, overflowing integers — must be
//! rejected, never silently coerced.
//!
//! No proptest in the offline environment, so cases come from the repo's
//! usual seeded-LCG generator: a few hundred pseudo-random trees per
//! property, reproducible by seed.

use spi_model::json::JsonValue;

/// Deterministic pseudo-random case generator (64-bit LCG, same constants as
//  the other in-tree property harnesses).
use spi_testutil::Lcg as Cases;

/// A pseudo-random string drawing from characters that exercise every escape
/// class the writer knows: quotes, backslashes, control bytes, multi-byte
/// UTF-8, an astral-plane scalar (surrogate-pair escape on the wire).
fn random_string(cases: &mut Cases) -> String {
    const ALPHABET: [char; 14] = [
        'a', 'Z', '9', '"', '\\', '\n', '\t', '\r', '\u{08}', '\u{0c}', '\u{01}', 'é', '℞', '😀',
    ];
    let length = cases.below(9) as usize;
    (0..length)
        .map(|_| ALPHABET[cases.below(ALPHABET.len() as u64) as usize])
        .collect()
}

/// A random tree of bounded depth. Floats are drawn from a finite pool —
/// NaN/Inf have no JSON representation (the writer emits `null`) so they are
/// excluded from the round-trip property by construction.
fn random_tree(cases: &mut Cases, depth: usize) -> JsonValue {
    let leaf_only = depth == 0;
    match cases.below(if leaf_only { 5 } else { 7 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(cases.below(2) == 0),
        2 => {
            // Integers across the full i128-visible range the tree keeps
            // exact, including u64::MAX and negatives.
            let magnitude = match cases.below(4) {
                0 => i128::from(cases.below(1000)),
                1 => i128::from(u64::MAX),
                2 => i128::from(i64::MIN),
                _ => i128::from(cases.below(u64::MAX)) * if cases.below(2) == 0 { -1 } else { 1 },
            };
            JsonValue::Int(magnitude)
        }
        3 => {
            const FLOATS: [f64; 6] = [0.0, -0.5, 1.5, 1e300, -2.25e-8, 123456.789];
            JsonValue::Float(FLOATS[cases.below(FLOATS.len() as u64) as usize])
        }
        4 => JsonValue::Str(random_string(cases)),
        5 => {
            let length = cases.below(4) as usize;
            JsonValue::Array((0..length).map(|_| random_tree(cases, depth - 1)).collect())
        }
        _ => {
            let length = cases.below(4) as usize;
            let mut members: Vec<(String, JsonValue)> = Vec::new();
            for index in 0..length {
                // Unique keys by construction (the parser rejects duplicates).
                let key = format!("{}#{index}", random_string(cases));
                let value = random_tree(cases, depth - 1);
                members.push((key, value));
            }
            JsonValue::Object(members)
        }
    }
}

#[test]
fn random_trees_round_trip_bit_identically() {
    for seed in 0..300u64 {
        let mut cases = Cases::new(seed);
        let tree = random_tree(&mut cases, 4);
        let line = tree.to_line();
        let reparsed = JsonValue::parse(&line)
            .unwrap_or_else(|error| panic!("seed {seed}: `{line}` failed to parse: {error}"));
        assert_eq!(reparsed, tree, "seed {seed}: tree changed across the wire");
        assert_eq!(
            reparsed.to_line(),
            line,
            "seed {seed}: reserialization is not byte-identical"
        );
        // The digest (the cache key of spi-store) is a pure function of those
        // bytes, so it must survive the round trip too.
        assert_eq!(reparsed.digest(), tree.digest(), "seed {seed}");
    }
}

#[test]
fn every_strict_prefix_of_a_valid_document_is_rejected() {
    // Truncation property: chopping a valid document anywhere must error —
    // except where the prefix happens to be a complete JSON value followed by
    // nothing (cannot happen here: the document is one object, and an object
    // prefix is never a complete value).
    let document = r#"{"op":"submit","shards":[1,2,3],"name":"a\nb","nested":{"x":null,"f":1.5}}"#;
    assert!(JsonValue::parse(document).is_ok());
    for cut in 1..document.len() {
        if !document.is_char_boundary(cut) {
            continue;
        }
        let prefix = &document[..cut];
        assert!(
            JsonValue::parse(prefix).is_err(),
            "truncated prefix `{prefix}` parsed"
        );
    }
}

#[test]
fn duplicate_keys_are_rejected_past_the_linear_scan_threshold() {
    // Large objects switch to hash-set detection; the behavior must not
    // change at or around the switch-over.
    for size in [15usize, 16, 17, 64] {
        let unique: String = (0..size).map(|i| format!("\"k{i}\":{i},")).collect();
        let valid = format!("{{{}\"last\":0}}", unique);
        assert!(JsonValue::parse(&valid).is_ok(), "size {size} unique keys");
        let duplicate = format!("{{{}\"k0\":99}}", unique);
        assert!(
            JsonValue::parse(&duplicate).is_err(),
            "size {size} duplicate of the first key"
        );
        let adjacent = format!("{{{}\"k{}\":99}}", unique, size - 1);
        assert!(
            JsonValue::parse(&adjacent).is_err(),
            "size {size} duplicate of the latest key"
        );
    }
}

#[test]
fn duplicate_keys_are_rejected_at_any_depth() {
    for text in [
        r#"{"a":1,"a":2}"#,
        r#"{"a":1,"b":{"x":1,"x":2}}"#,
        r#"[{"k":null,"k":null}]"#,
        "{\"\":0,\"\":1}",
    ] {
        assert!(
            JsonValue::parse(text).is_err(),
            "`{text}` has a duplicate key and must not parse"
        );
    }
    // Same key at *different* depths is fine.
    assert!(JsonValue::parse(r#"{"a":{"a":1}}"#).is_ok());
}

#[test]
fn overflowing_integers_are_rejected_not_rounded() {
    // i128::MAX fits; one digit more must error rather than saturate or fall
    // back to lossy floats.
    let max = i128::MAX.to_string();
    assert_eq!(
        JsonValue::parse(&max).unwrap(),
        JsonValue::Int(i128::MAX),
        "i128::MAX is in range"
    );
    for text in [
        "170141183460469231731687303715884105728",  // i128::MAX + 1
        "-170141183460469231731687303715884105729", // i128::MIN - 1
        "99999999999999999999999999999999999999999999",
    ] {
        assert!(
            JsonValue::parse(text).is_err(),
            "`{text}` overflows i128 and must not parse"
        );
    }
}

#[test]
fn u64_boundary_values_survive_exactly() {
    for value in [0u64, 1, u64::MAX - 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
        let line = JsonValue::Int(i128::from(value)).to_line();
        assert_eq!(
            JsonValue::parse(&line).unwrap().as_u64(),
            Some(value),
            "u64 {value} corrupted by the wire"
        );
    }
}
