//! Edge-case coverage for the index-dense slab storage of [`SpiGraph`]:
//! offset-shift merges, tombstone handling, empty-graph merges, and a pinned
//! iteration-order/digest test guarding wire and cache-key stability.

use spi_model::json::JsonValue;
use spi_model::{
    digest_json, ChannelId, ChannelKind, EdgeDirection, Interval, ProcessId, SpiGraph,
};

/// A tombstone-free three-node chain `a -> c -> b`.
fn chain(prefix: &str) -> SpiGraph {
    let mut g = SpiGraph::new(format!("{prefix}chain"));
    let a = g.new_process(format!("{prefix}a")).unwrap();
    let b = g.new_process(format!("{prefix}b")).unwrap();
    let c = g
        .new_channel(format!("{prefix}c"), ChannelKind::Queue)
        .unwrap();
    g.set_writer(c, a).unwrap();
    g.set_reader(c, b).unwrap();
    g.process_mut(a)
        .unwrap()
        .add_mode_with("m0", Interval::point(1), |m| {
            m.set_production(c, spi_model::ProductionSpec::amount(Interval::point(1)));
        });
    g.process_mut(b)
        .unwrap()
        .add_mode_with("m0", Interval::point(1), |m| {
            m.set_consumption(c, Interval::point(1));
        });
    g
}

#[test]
fn merge_disjoint_is_a_pure_offset_shift_for_tombstone_free_graphs() {
    let mut host = chain("h_");
    let guest = chain("g_");
    let process_offset = host.process_count() as u32;
    let channel_offset = host.channel_count() as u32;

    let map = host.merge_disjoint(&guest);

    // Tombstone-free on both sides ⇒ every new id is exactly old + offset.
    for (old, new) in map.processes.iter() {
        assert_eq!(new.index(), old.index() + process_offset);
    }
    for (old, new) in map.channels.iter() {
        assert_eq!(new.index(), old.index() + channel_offset);
    }
    assert_eq!(map.processes.len(), guest.process_count());
    assert_eq!(map.channels.len(), guest.channel_count());

    // Edges and rate entries were shifted along with the node ids.
    let new_c = map.channels[&ChannelId::new(0)];
    assert_eq!(
        host.writer_of(new_c),
        Some(map.processes[&ProcessId::new(0)])
    );
    assert_eq!(
        host.reader_of(new_c),
        Some(map.processes[&ProcessId::new(1)])
    );
    assert!(host.validate().is_ok());
}

#[test]
fn merge_disjoint_reids_a_tombstoned_guest_densely() {
    // Guest: insert three processes/channels, remove the middle ones — the
    // guest slab now has tombstones and its live ids are non-contiguous.
    let mut guest = SpiGraph::new("guest");
    let ga = guest.new_process("ga").unwrap();
    let gmid = guest.new_process("gmid").unwrap();
    let gb = guest.new_process("gb").unwrap();
    let gc1 = guest.new_channel("gc1", ChannelKind::Queue).unwrap();
    let gc_mid = guest.new_channel("gcmid", ChannelKind::Queue).unwrap();
    let gc2 = guest.new_channel("gc2", ChannelKind::Register).unwrap();
    guest.set_writer(gc1, ga).unwrap();
    guest.set_reader(gc1, gb).unwrap();
    guest.set_writer(gc2, gb).unwrap();
    guest.remove_process(gmid).unwrap();
    guest.remove_channel(gc_mid).unwrap();
    assert_eq!(guest.process_count(), 2);
    assert_eq!(guest.channel_count(), 2);

    // Merging skips the tombstones: the host receives contiguous fresh ids
    // (no holes are copied), keeping the receiving slab dense.
    let mut host = SpiGraph::new("host");
    let map = host.merge_disjoint(&guest);
    assert_eq!(map.processes.len(), 2);
    assert_eq!(map.channels.len(), 2);
    assert!(map.processes.get(&gmid).is_none(), "tombstone not mapped");
    assert!(map.channels.get(&gc_mid).is_none(), "tombstone not mapped");
    assert_eq!(
        host.process_ids(),
        vec![ProcessId::new(0), ProcessId::new(1)],
        "re-ids are dense, tombstones are not inherited"
    );
    assert_eq!(
        host.channel_ids(),
        vec![ChannelId::new(0), ChannelId::new(1)]
    );
    // The next insert proves no hole was carried over.
    assert_eq!(host.new_process("fresh").unwrap(), ProcessId::new(2));

    // Topology survived the re-id.
    let c1 = map.channels[&gc1];
    assert_eq!(host.writer_of(c1), Some(map.processes[&ga]));
    assert_eq!(host.reader_of(c1), Some(map.processes[&gb]));
    assert_eq!(host.writer_of(map.channels[&gc2]), Some(map.processes[&gb]));
    assert!(host.process_by_name("ga").is_some());
    assert!(host.process_by_name("gmid").is_none());
}

#[test]
fn merging_an_empty_graph_is_a_no_op_and_into_an_empty_graph_a_copy() {
    let reference = chain("e_");
    let empty = SpiGraph::new("empty");

    let mut host = chain("e_");
    let map = host.merge_disjoint(&empty);
    assert!(map.processes.is_empty());
    assert!(map.channels.is_empty());
    // Name differs ("e_chain" vs its own) is irrelevant — same name here.
    assert_eq!(host, reference);

    let mut fresh = SpiGraph::new("e_chain");
    let map = fresh.merge_disjoint(&reference);
    assert_eq!(map.processes.len(), reference.process_count());
    assert_eq!(fresh, reference, "merging into empty copies ids verbatim");
    assert!(fresh.validate().is_ok());
}

#[test]
fn removal_keeps_ids_stable_and_clone_preserves_tombstones() {
    let mut g = chain("r_");
    let orphan = g.new_process("r_orphan").unwrap();
    assert_eq!(orphan, ProcessId::new(2));
    g.remove_process(orphan).unwrap();

    // Ids of surviving nodes are untouched and the freed id is never reused.
    assert!(g.process(ProcessId::new(0)).is_some());
    assert!(g.process(orphan).is_none());
    let readded = g.new_process("r_orphan2").unwrap();
    assert_eq!(readded, ProcessId::new(3), "tombstoned id is not recycled");

    // clone/clone_from carry the tombstone layout (it determines future ids),
    // and equality distinguishes layouts.
    let cloned = g.clone();
    assert_eq!(cloned, g);
    let mut via_clone_from = SpiGraph::new("");
    via_clone_from.clone_from(&g);
    assert_eq!(via_clone_from, g);

    let mut compact = chain("r_");
    let p = compact.new_process("r_orphan2").unwrap();
    assert_eq!(p, ProcessId::new(2));
    assert_ne!(compact, g, "same live nodes, different slots ⇒ not equal");
}

/// Canonical JSON rendering of everything iteration-order dependent: node
/// names in iteration order, edges in `edges()` order. Any storage change
/// that reorders iteration changes this value — and with it wire output,
/// result-cache digests and recorded baselines.
fn iteration_fingerprint(g: &SpiGraph) -> JsonValue {
    JsonValue::object([
        (
            "processes",
            JsonValue::Array(g.processes().map(|p| JsonValue::string(p.name())).collect()),
        ),
        (
            "channels",
            JsonValue::Array(g.channels().map(|c| JsonValue::string(c.name())).collect()),
        ),
        (
            "edges",
            JsonValue::Array(
                g.edges()
                    .iter()
                    .map(|e| {
                        JsonValue::string(format!(
                            "{}:{}:{}",
                            e.channel,
                            e.process,
                            match e.direction {
                                EdgeDirection::ProcessToChannel => "w",
                                EdgeDirection::ChannelToProcess => "r",
                            }
                        ))
                    })
                    .collect(),
            ),
        ),
    ])
}

#[test]
fn iteration_order_is_insertion_order_and_digest_pinned() {
    // Interleave inserts, a removal and a re-insert, then merge — the
    // sequence exercises every path that could disturb iteration order.
    let mut g = SpiGraph::new("pin");
    g.new_process("zeta").unwrap();
    g.new_process("alpha").unwrap();
    let c_late = g.new_channel("late", ChannelKind::Queue).unwrap();
    g.new_channel("early", ChannelKind::Register).unwrap();
    let doomed = g.new_process("doomed").unwrap();
    g.remove_process(doomed).unwrap();
    g.new_process("mu").unwrap();
    g.set_writer(c_late, ProcessId::new(1)).unwrap();
    g.merge_disjoint(&chain("pin_"));

    let names: Vec<&str> = g.processes().map(|p| p.name()).collect();
    assert_eq!(
        names,
        ["zeta", "alpha", "mu", "pin_a", "pin_b"],
        "iteration is insertion order, never name order"
    );
    let channels: Vec<&str> = g.channels().map(|c| c.name()).collect();
    assert_eq!(channels, ["late", "early", "pin_c"]);

    // The digest below was recorded when the slab storage landed. If this
    // assertion ever fails, iteration order changed — which silently changes
    // wire JSON, cache digests and baselines. Do not update the constant
    // without understanding what downstream representation just shifted.
    assert_eq!(
        digest_json(&iteration_fingerprint(&g)).to_string(),
        "cce1d7bdd93a5c5c9e08c2d5a51fd964"
    );
}
