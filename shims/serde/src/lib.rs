//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this shim supplies the
//! two trait names and the derive macros that the workspace imports. The
//! traits are pure markers implemented for every type; the derives expand to
//! nothing (see `serde_derive`). Nothing in the workspace serializes *through
//! serde* — values that actually cross a process boundary (the `spi-explore`
//! ndjson protocol, exploration results) go through the hand-rolled
//! `spi_model::json` layer, whose impls double as the specification of the
//! representations (string-interned `Sym`s, rebuilt `VariantSpace` decode
//! tables) a real serde swap must keep. To swap, replace the `path` dependency
//! with the real `serde = { version = "1", features = ["derive"] }` and
//! everything keeps compiling unchanged.

/// Marker stand-in for `serde::Serialize`; implemented for all types.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; implemented for all types.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
