//! Offline stand-in for the parts of `rand` this workspace uses.
//!
//! The build environment has no crates.io access. The workloads crate only
//! needs a seeded, deterministic generator with `seed_from_u64` and
//! `gen_range` over integer ranges, so this shim implements exactly that on
//! top of splitmix64 (a well-distributed 64-bit mixer). Sequences are
//! deterministic for a given seed — the property the synthetic-workload
//! generators rely on — but do **not** match the real `rand::rngs::StdRng`
//! byte-for-byte; the generators in this repository only require per-seed
//! determinism, not a specific stream.

use std::ops::Range;

/// Subset of `rand::Rng`: integer range sampling.
pub trait Rng {
    /// Returns the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (`range.start <= x < range.end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Subset of `rand::SeedableRng`: seeding from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `range` using `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is negligible for the tiny spans used by the
                // workload generators (all far below 2^32).
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Stand-in for `rand::rngs`.

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): one addition, three xors,
            // two multiplies; passes BigCrush when used as a stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..20);
            assert!((5..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
        }
    }
}
