//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of the criterion API that the `spi-bench` benches call —
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!`/`criterion_main!`
//! macros — as a small wall-clock harness. It genuinely measures: each sample
//! runs a calibrated number of iterations and the per-iteration mean, minimum
//! and maximum over all samples are printed in a criterion-like format. It
//! performs no statistical outlier analysis and writes no HTML reports.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (criterion's own is deprecated in
/// favour of the std one; some benches import it from here).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock budget for one measurement sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Entry point handed to benchmark functions, as in the real criterion.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }
}

/// Identifier for a parameterised benchmark (`{function}/{parameter}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a routine under `{group}/{name}`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Benchmarks a routine that takes a borrowed input under `{group}/{id}`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the calibrated number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: start at one iteration per sample and grow until a sample
    // fills the budget (or the routine is clearly slow).
    let mut iterations = 1u64;
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= SAMPLE_BUDGET || iterations >= 1 << 20 {
            break;
        }
        // Aim directly for the budget based on the observed per-iter time.
        let per_iter = bencher.elapsed.as_nanos().max(1) / u128::from(iterations);
        let target = (SAMPLE_BUDGET.as_nanos() / per_iter).clamp(1, 1 << 20) as u64;
        if target <= iterations {
            break;
        }
        iterations = target;
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<60} time: [{} {} {}]  ({} iters x {} samples)",
        format_ns(samples_ns[0]),
        format_ns(mean),
        format_ns(*samples_ns.last().expect("sample_size >= 2")),
        iterations,
        samples_ns.len(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("flatten", 16).to_string(), "flatten/16");
    }
}
