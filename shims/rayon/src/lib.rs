//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access. The synthesis crate needs
//! scoped fork-join parallelism (`rayon::scope` + `Scope::spawn`) and
//! `current_num_threads` to size its work chunks; both are implemented here
//! directly on [`std::thread::scope`], so spawned closures may borrow from the
//! enclosing stack exactly as with the real rayon. Each `spawn` starts an OS
//! thread instead of queueing onto a work-stealing pool — callers in this
//! workspace spawn one task per hardware thread, for which that is equivalent.

use std::thread;

/// Number of threads worth fanning out to (the real rayon reports its pool
/// size; this shim reports [`std::thread::available_parallelism`]).
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scope in which borrowed-data tasks can be spawned; see [`scope`].
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the task is
    /// joined before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope));
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned task has finished.
///
/// Panics from spawned tasks propagate to the caller, as with the real rayon.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawned_tasks_run_and_join() {
        let sum = AtomicU64::new(0);
        super::scope(|s| {
            for i in 1..=10u64 {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = super::scope(|_| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(super::current_num_threads() >= 1);
    }
}
