//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this repository has no access to crates.io, so the
//! real `serde_derive` cannot be fetched. Nothing in the workspace currently
//! serializes values — the `#[derive(Serialize, Deserialize)]` annotations only
//! document intent and keep the public API source-compatible with the real
//! serde. These derive macros therefore accept the usual derive syntax
//! (including `#[serde(...)]` helper attributes) and expand to nothing; the
//! marker traits in the sibling `serde` shim are implemented for all types via
//! blanket impls.
//!
//! Swapping in the real serde later is a one-line change per `Cargo.toml` and
//! requires no source edits.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
